package snapshot

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/replication"
	"repro/internal/sim"
)

// TransferMagic opens a live state-transfer blob (AddBackup's payload
// on the simulated link).
const TransferMagic = "HFTXFER1"

// RAM images are encoded sparsely: only pages containing a nonzero
// byte are written. The guest kernel's footprint is a small fraction
// of physical RAM, and the blob's length is what the simulated link
// charges for — an idle-page-free image is what a real state-transfer
// implementation would ship too (VMware FT and Remus both elide
// untouched pages).

// putRAM writes a sparse page-granular RAM image.
func putRAM(w *Writer, mem []byte) {
	w.U32(uint32(len(mem)))
	n := 0
	for base := 0; base < len(mem); base += isa.PageSize {
		if !zeroPage(mem[base:min(base+isa.PageSize, len(mem))]) {
			n++
		}
	}
	w.U32(uint32(n))
	for base := 0; base < len(mem); base += isa.PageSize {
		end := min(base+isa.PageSize, len(mem))
		if zeroPage(mem[base:end]) {
			continue
		}
		w.U32(uint32(base >> isa.PageShift))
		w.Bytes(mem[base:end])
	}
}

// ram reads a sparse RAM image back into a full zero-filled buffer.
func ram(r *Reader) []byte {
	size := int(r.U32())
	n := int(r.U32())
	if r.Err() != nil || size < 0 || size > 1<<31 {
		r.fail()
		return nil
	}
	mem := make([]byte, size)
	for i := 0; i < n; i++ {
		page := int(r.U32())
		data := r.Bytes()
		if r.Err() != nil {
			return nil
		}
		base := page << isa.PageShift
		if base < 0 || base+len(data) > size {
			r.fail()
			return nil
		}
		copy(mem[base:], data)
	}
	return mem
}

func zeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// PutMachineState encodes a machine capture.
func PutMachineState(w *Writer, s machine.State) {
	w.U32(s.MemBytes)
	for _, v := range s.Regs {
		w.U32(v)
	}
	w.U32(s.PC)
	w.U32(s.PSW)
	for _, v := range s.CRs {
		w.U32(v)
	}
	w.Bool(s.Halted)
	w.U64(s.Cycles)
	putMachineStats(w, s.Stats)
	putRAM(w, s.Mem)
	putTLBState(w, s.TLB)
}

// MachineState decodes a machine capture.
func MachineState(r *Reader) machine.State {
	var s machine.State
	s.MemBytes = r.U32()
	for i := range s.Regs {
		s.Regs[i] = r.U32()
	}
	s.PC = r.U32()
	s.PSW = r.U32()
	for i := range s.CRs {
		s.CRs[i] = r.U32()
	}
	s.Halted = r.Bool()
	s.Cycles = r.U64()
	s.Stats = machineStats(r)
	s.Mem = ram(r)
	s.TLB = tlbState(r)
	return s
}

func putMachineStats(w *Writer, s machine.Stats) {
	w.U64(s.Instructions)
	w.U64(s.Privileged)
	w.U64(s.Environment)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.Branches)
	w.U64(s.Traps)
}

func machineStats(r *Reader) machine.Stats {
	return machine.Stats{
		Instructions: r.U64(),
		Privileged:   r.U64(),
		Environment:  r.U64(),
		Loads:        r.U64(),
		Stores:       r.U64(),
		Branches:     r.U64(),
		Traps:        r.U64(),
	}
}

func putTLBState(w *Writer, s machine.TLBState) {
	w.String(s.Policy)
	w.U64(s.Stamp)
	w.Int(s.Next)
	w.Int(s.Pending)
	w.U64(s.Stats.Hits)
	w.U64(s.Stats.Misses)
	w.U64(s.Stats.Inserts)
	w.U64(s.Stats.Evicts)
	w.U64(s.Stats.Purges)
	w.U32(uint32(len(s.Slots)))
	for _, sl := range s.Slots {
		w.U32(sl.Entry.VPN)
		w.U32(sl.Entry.PPN)
		w.U32(sl.Entry.Flags)
		w.Bool(sl.Entry.Valid)
		w.U64(sl.LastUse)
	}
}

func tlbState(r *Reader) machine.TLBState {
	var s machine.TLBState
	s.Policy = r.String()
	s.Stamp = r.U64()
	s.Next = r.Int()
	s.Pending = r.Int()
	s.Stats.Hits = r.U64()
	s.Stats.Misses = r.U64()
	s.Stats.Inserts = r.U64()
	s.Stats.Evicts = r.U64()
	s.Stats.Purges = r.U64()
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n > 1<<16 {
		r.fail()
		return s
	}
	s.Slots = make([]machine.TLBSlotState, n)
	for i := range s.Slots {
		s.Slots[i].Entry.VPN = r.U32()
		s.Slots[i].Entry.PPN = r.U32()
		s.Slots[i].Entry.Flags = r.U32()
		s.Slots[i].Entry.Valid = r.Bool()
		s.Slots[i].LastUse = r.U64()
	}
	return s
}

// PutInterrupt encodes one buffered virtual interrupt.
func PutInterrupt(w *Writer, i hypervisor.Interrupt) {
	w.U32(uint32(i.Line))
	w.Bool(i.Timer)
	w.U32(i.Dev)
	w.U32(i.Status)
	w.U32(i.Addr)
	w.Bytes(i.Data)
	w.U32(i.Seq)
	w.U32(i.CapturedTOD)
}

// Interrupt decodes one buffered virtual interrupt.
func Interrupt(r *Reader) hypervisor.Interrupt {
	var i hypervisor.Interrupt
	i.Line = uint(r.U32())
	i.Timer = r.Bool()
	i.Dev = r.U32()
	i.Status = r.U32()
	i.Addr = r.U32()
	if b := r.Bytes(); len(b) > 0 {
		i.Data = b
	}
	i.Seq = r.U32()
	i.CapturedTOD = r.U32()
	return i
}

func putInterrupts(w *Writer, ints []hypervisor.Interrupt) {
	w.U32(uint32(len(ints)))
	for _, i := range ints {
		PutInterrupt(w, i)
	}
}

func interrupts(r *Reader) []hypervisor.Interrupt {
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]hypervisor.Interrupt, n)
	for i := range out {
		out[i] = Interrupt(r)
	}
	return out
}

func putHVStats(w *Writer, s hypervisor.Stats) {
	w.U64(s.GuestInstructions)
	w.U64(s.Epochs)
	w.U64(s.PrivSimulated)
	w.U64(s.EnvSimulated)
	w.U64(s.TLBFills)
	w.U64(s.ReflectedTraps)
	w.U64(s.VIRQDelivered)
	w.U64(s.IOIssued)
	w.U64(s.IOSuppressed)
	w.U64(s.ConsoleSuppressed)
	w.U64(s.Captured)
	w.U64(s.OutputsDeferred)
	w.U64(s.StartsDeferred)
	w.U64(s.AdaptiveCuts)
	w.I64(int64(s.HypervisorTime))
	w.I64(int64(s.DeliveryDelayTotal))
	w.U64(s.DeliveryDelayCount)
}

func hvStats(r *Reader) hypervisor.Stats {
	var s hypervisor.Stats
	s.GuestInstructions = r.U64()
	s.Epochs = r.U64()
	s.PrivSimulated = r.U64()
	s.EnvSimulated = r.U64()
	s.TLBFills = r.U64()
	s.ReflectedTraps = r.U64()
	s.VIRQDelivered = r.U64()
	s.IOIssued = r.U64()
	s.IOSuppressed = r.U64()
	s.ConsoleSuppressed = r.U64()
	s.Captured = r.U64()
	s.OutputsDeferred = r.U64()
	s.StartsDeferred = r.U64()
	s.AdaptiveCuts = r.U64()
	s.HypervisorTime = sim.Time(r.I64())
	s.DeliveryDelayTotal = sim.Time(r.I64())
	s.DeliveryDelayCount = r.U64()
	return s
}

// PutHypervisorState encodes a hypervisor capture.
func PutHypervisorState(w *Writer, s hypervisor.State) {
	for _, v := range s.VCR {
		w.U32(v)
	}
	w.U32(s.VPSW)
	w.Bool(s.VITMRArmed)
	w.U32(s.VITMRDeadline)
	w.U32(s.TODBase)
	w.U64(s.EpochStartInstr)
	w.U64(s.GuestInstr)
	w.U64(s.Epoch)
	w.Bool(s.Halted)
	w.Bool(s.IOActive)
	putInterrupts(w, s.Buffered)
	w.U32(uint32(len(s.Devices)))
	for _, d := range s.Devices {
		w.String(d.ID)
		w.U32(d.Base)
		w.U32(uint32(d.Line))
		w.Bool(d.Outstanding)
		w.Bool(d.IssuedReal)
		w.U32(d.OutCount)
		w.Bytes(d.Data)
	}
	w.U32(uint32(len(s.Suppressed)))
	for _, so := range s.Suppressed {
		w.U32(so.Dev)
		w.U32(so.Off)
		w.U32(so.Val)
		w.U32(so.Ordinal)
		w.U64(so.Epoch)
		w.Bool(so.Start)
		w.U64(so.At)
	}
	putHVStats(w, s.Stats)
}

// HypervisorState decodes a hypervisor capture.
func HypervisorState(r *Reader) hypervisor.State {
	var s hypervisor.State
	for i := range s.VCR {
		s.VCR[i] = r.U32()
	}
	s.VPSW = r.U32()
	s.VITMRArmed = r.Bool()
	s.VITMRDeadline = r.U32()
	s.TODBase = r.U32()
	s.EpochStartInstr = r.U64()
	s.GuestInstr = r.U64()
	s.Epoch = r.U64()
	s.Halted = r.Bool()
	s.IOActive = r.Bool()
	s.Buffered = interrupts(r)
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n > 1<<8 {
		r.fail()
		return s
	}
	for i := 0; i < n; i++ {
		var d hypervisor.DeviceState
		d.ID = r.String()
		d.Base = r.U32()
		d.Line = uint(r.U32())
		d.Outstanding = r.Bool()
		d.IssuedReal = r.Bool()
		d.OutCount = r.U32()
		d.Data = r.Bytes()
		s.Devices = append(s.Devices, d)
	}
	n = int(r.U32())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		r.fail()
		return s
	}
	for i := 0; i < n; i++ {
		var so hypervisor.SuppressedOutputState
		so.Dev = r.U32()
		so.Off = r.U32()
		so.Val = r.U32()
		so.Ordinal = r.U32()
		so.Epoch = r.U64()
		so.Start = r.Bool()
		so.At = r.U64()
		s.Suppressed = append(s.Suppressed, so)
	}
	s.Stats = hvStats(r)
	return s
}

func putSyncEpoch(w *Writer, e replication.SyncEpoch) {
	w.U64(e.Epoch)
	w.U32(e.Tme)
	w.U64(e.Digest)
	w.Bool(e.Halted)
	putInterrupts(w, e.Ints)
}

func syncEpoch(r *Reader) replication.SyncEpoch {
	var e replication.SyncEpoch
	e.Epoch = r.U64()
	e.Tme = r.U32()
	e.Digest = r.U64()
	e.Halted = r.Bool()
	e.Ints = interrupts(r)
	return e
}

func putSyncEpochs(w *Writer, es []replication.SyncEpoch) {
	w.U32(uint32(len(es)))
	for _, e := range es {
		putSyncEpoch(w, e)
	}
}

func syncEpochs(r *Reader) []replication.SyncEpoch {
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n > 1<<24 {
		r.fail()
		return nil
	}
	var out []replication.SyncEpoch
	for i := 0; i < n; i++ {
		out = append(out, syncEpoch(r))
	}
	return out
}

func putReplStats(w *Writer, s replication.Stats) {
	w.U64(s.Epochs)
	w.U64(s.MessagesSent)
	w.U64(s.BytesSent)
	w.U64(s.AcksReceived)
	w.U64(s.AckWaits)
	w.I64(int64(s.AckWaitTime))
	w.U64(s.IOGateWaits)
	w.I64(int64(s.IOGateWaitTime))
	w.U64(s.IntsForwarded)
	w.U64(s.IntsReceived)
	w.U64(s.Divergences)
	w.U64(s.PeerTimeouts)
	w.U64(s.PromotedAtEpoch)
	w.I64(int64(s.PromotedAtTime))
	w.Bool(s.Promoted)
	w.U64(s.UncertainSynth)
	w.U64(s.OutputsReleased)
}

func replStats(r *Reader) replication.Stats {
	var s replication.Stats
	s.Epochs = r.U64()
	s.MessagesSent = r.U64()
	s.BytesSent = r.U64()
	s.AcksReceived = r.U64()
	s.AckWaits = r.U64()
	s.AckWaitTime = sim.Time(r.I64())
	s.IOGateWaits = r.U64()
	s.IOGateWaitTime = sim.Time(r.I64())
	s.IntsForwarded = r.U64()
	s.IntsReceived = r.U64()
	s.Divergences = r.U64()
	s.PeerTimeouts = r.U64()
	s.PromotedAtEpoch = r.U64()
	s.PromotedAtTime = sim.Time(r.I64())
	s.Promoted = r.Bool()
	s.UncertainSynth = r.U64()
	s.OutputsReleased = r.U64()
	return s
}

// PutCoordinatorState encodes a coordinator capture.
func PutCoordinatorState(w *Writer, s replication.CoordinatorState) {
	w.U64(s.Seq)
	w.U32(uint32(len(s.PeerAcked)))
	for _, a := range s.PeerAcked {
		w.U64(a)
	}
	w.U32(s.IntIndex)
	w.U32(uint32(len(s.EndSeqs)))
	for _, e := range s.EndSeqs {
		w.U64(e.Epoch)
		w.U64(e.Seq)
	}
	w.U64(s.AckedThrough)
	w.Bool(s.HaveAcked)
	w.U32(uint32(len(s.Window)))
	for _, e := range s.Window {
		w.U64(e.Epoch)
		w.U64(e.Seq)
	}
	w.U64(s.Released)
	w.Bool(s.HaveReleased)
	putSyncEpochs(w, s.Archive)
	putReplStats(w, s.Stats)
}

// CoordinatorState decodes a coordinator capture.
func CoordinatorState(r *Reader) replication.CoordinatorState {
	var s replication.CoordinatorState
	s.Seq = r.U64()
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.PeerAcked = append(s.PeerAcked, r.U64())
	}
	s.IntIndex = r.U32()
	n = int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.EndSeqs = append(s.EndSeqs, replication.EndSeqState{Epoch: r.U64(), Seq: r.U64()})
	}
	s.AckedThrough = r.U64()
	s.HaveAcked = r.Bool()
	n = int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Window = append(s.Window, replication.EndSeqState{Epoch: r.U64(), Seq: r.U64()})
	}
	s.Released = r.U64()
	s.HaveReleased = r.Bool()
	s.Archive = syncEpochs(r)
	s.Stats = replStats(r)
	return s
}

// PutBackupState encodes a backup capture.
func PutBackupState(w *Writer, s replication.BackupState) {
	w.Int(s.Index)
	w.U64(s.Completed)
	w.Bool(s.Promoted)
	w.Bool(s.Failed)
	w.Bool(s.Withdrawn)
	w.Bool(s.Done)
	w.Bool(s.Halted)
	w.U32(s.BootTOD)
	w.U32(uint32(len(s.Pending)))
	for _, pe := range s.Pending {
		w.U64(pe.Epoch)
		w.U32(uint32(len(pe.Ints)))
		for _, pi := range pe.Ints {
			w.U32(pi.Index)
			PutInterrupt(w, pi.Int)
		}
		w.Bool(pe.HasTme)
		w.U32(pe.Tme)
		w.Bool(pe.HasEnd)
		w.U64(pe.End.Seq)
		w.U64(pe.End.Digest)
		w.Bool(pe.End.Halted)
		w.Bool(pe.End.HasCut)
		w.U64(pe.End.Cut)
		w.U64(pe.End.Released)
		w.Bool(pe.End.HaveReleased)
		w.Bool(pe.Verbatim != nil)
		if pe.Verbatim != nil {
			putSyncEpoch(w, *pe.Verbatim)
		}
	}
	putSyncEpochs(w, s.Archive)
	putReplStats(w, s.Stats)
	w.Bool(s.Coordinator != nil)
	if s.Coordinator != nil {
		PutCoordinatorState(w, *s.Coordinator)
	}
}

// BackupState decodes a backup capture.
func BackupState(r *Reader) replication.BackupState {
	var s replication.BackupState
	s.Index = r.Int()
	s.Completed = r.U64()
	s.Promoted = r.Bool()
	s.Failed = r.Bool()
	s.Withdrawn = r.Bool()
	s.Done = r.Bool()
	s.Halted = r.Bool()
	s.BootTOD = r.U32()
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		var pe replication.PendingEpochState
		pe.Epoch = r.U64()
		m := int(r.U32())
		for j := 0; j < m && r.Err() == nil; j++ {
			pe.Ints = append(pe.Ints, replication.PendingInterrupt{Index: r.U32(), Int: Interrupt(r)})
		}
		pe.HasTme = r.Bool()
		pe.Tme = r.U32()
		pe.HasEnd = r.Bool()
		pe.End.Seq = r.U64()
		pe.End.Digest = r.U64()
		pe.End.Halted = r.Bool()
		pe.End.HasCut = r.Bool()
		pe.End.Cut = r.U64()
		pe.End.Released = r.U64()
		pe.End.HaveReleased = r.Bool()
		if r.Bool() {
			v := syncEpoch(r)
			pe.Verbatim = &v
		}
		s.Pending = append(s.Pending, pe)
	}
	s.Archive = syncEpochs(r)
	s.Stats = replStats(r)
	if r.Bool() {
		cs := CoordinatorState(r)
		s.Coordinator = &cs
	}
	return s
}

// Transfer is the payload of a live backup-reintegration state
// transfer: the acting coordinator's complete virtual-machine image as
// of an epoch boundary, plus the boundary's clock value (the Tme the
// joiner resynchronizes from, exactly as rule P5 prescribes for the
// steady state).
type Transfer struct {
	Machine    machine.State
	Hypervisor hypervisor.State
	Tme        uint32
	// Epoch is the boundary's committed epoch; the joiner's first own
	// epoch is Epoch+1.
	Epoch uint64
}

// EncodeTransfer serializes a state transfer. The returned blob's
// length is the wire size charged to the simulated link.
func EncodeTransfer(t Transfer) []byte {
	w := NewWriter(TransferMagic)
	PutMachineState(w, t.Machine)
	PutHypervisorState(w, t.Hypervisor)
	w.U32(t.Tme)
	w.U64(t.Epoch)
	return w.Finish()
}

// DecodeTransfer parses a state transfer blob.
func DecodeTransfer(blob []byte) (Transfer, error) {
	r, err := NewReader(blob, TransferMagic)
	if err != nil {
		return Transfer{}, err
	}
	var t Transfer
	t.Machine = MachineState(r)
	t.Hypervisor = HypervisorState(r)
	t.Tme = r.U32()
	t.Epoch = r.U64()
	if err := r.Err(); err != nil {
		return Transfer{}, err
	}
	if r.Remaining() != 0 {
		return Transfer{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Remaining())
	}
	return t, nil
}
