package snapshot

import (
	"errors"
	"repro/internal/console"
	"repro/internal/device"
	"repro/internal/scsi"
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/replication"
)

// TestCodecRoundTrip pins primitive encode/decode symmetry.
func TestCodecRoundTrip(t *testing.T) {
	w := NewWriter("TESTMAG1")
	w.U8(7)
	w.Bool(true)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 | 12345)
	w.I64(-42)
	w.Int(-7)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	blob := w.Finish()

	r, err := NewReader(blob, "TESTMAG1")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<63|12345 {
		t.Fatalf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Fatalf("Int = %d", v)
	}
	if b := r.Bytes(); string(b) != "\x01\x02\x03" {
		t.Fatalf("Bytes = %v", b)
	}
	if s := r.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	if r.Remaining() != 0 || r.Err() != nil {
		t.Fatalf("remaining %d, err %v", r.Remaining(), r.Err())
	}
}

// TestReaderRejects pins the structural gates.
func TestReaderRejects(t *testing.T) {
	blob := NewWriter("TESTMAG1").Finish()
	if _, err := NewReader(blob, "OTHERMAG"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong magic: %v", err)
	}
	if _, err := NewReader(blob[:5], "TESTMAG1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1]++
	if _, err := NewReader(bad, "TESTMAG1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad checksum: %v", err)
	}
	ver := append([]byte(nil), blob...)
	ver[8]++ // version word
	// Reseal so the checksum gate passes and the version gate is hit.
	h := fnvSum(ver[:len(ver)-8])
	for i := 0; i < 8; i++ {
		ver[len(ver)-8+i] = byte(h >> (8 * i))
	}
	if _, err := NewReader(ver, "TESTMAG1"); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
}

// TestTransferRoundTrip pins the state-transfer blob: a full machine +
// hypervisor capture survives encode/decode bit-for-bit, including
// sparse RAM, TLB recency, buffered interrupts with DMA payloads and
// adapter latches.
func TestTransferRoundTrip(t *testing.T) {
	m := machine.New(machine.Config{MemBytes: 1 << 20, TLBSize: 8})
	m.StorePhys32(0x1000, 0x12345678)
	m.StorePhys32(0xFF000, 0xCAFEBABE)
	m.Regs[5] = 99
	m.PC = 0x1000
	m.TLB.Insert(machine.TLBEntry{VPN: 3, PPN: 7, Flags: 0xF})

	hv := hypervisor.New(m, hypervisor.Config{EpochLength: 1024})
	hv.AttachDevice(device.Window{ID: "disk0", Base: 0x0, Size: scsi.AdapterWindow, Line: 1}, scsi.NewShadow())
	hv.AttachDevice(device.Window{ID: "console", Base: 0x1000, Size: console.Window, Line: 2, Unsolicited: true}, console.NewShadow())
	hv.BufferInterrupt(hypervisor.Interrupt{
		Line: 1, Dev: 0,
		Completion: device.Completion{Status: 2, Addr: 0x3000, Data: []byte{9, 8, 7}},
	})

	in := Transfer{
		Machine:    m.CaptureState(),
		Hypervisor: hv.CaptureState(),
		Tme:        777,
		Epoch:      42,
	}
	blob := EncodeTransfer(in)
	out, err := DecodeTransfer(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Re-encoding the decoded transfer must reproduce the blob exactly
	// (deterministic encoding is what the wire-size charge and the
	// restore verification rely on).
	if string(EncodeTransfer(out)) != string(blob) {
		t.Fatal("transfer re-encoding differs")
	}
	if out.Tme != 777 || out.Epoch != 42 {
		t.Fatalf("scalars: %+v", out)
	}

	// Applying the decoded state must reproduce the machine.
	m2 := machine.New(machine.Config{MemBytes: 1 << 20, TLBSize: 8})
	if err := m2.RestoreState(out.Machine); err != nil {
		t.Fatal(err)
	}
	if m2.Digest() != m.Digest() || m2.DigestMemory() != m.DigestMemory() {
		t.Fatal("restored machine differs")
	}
}

// TestCoordinatorBackupStateCodec round-trips the replication capture
// encoders through re-encoding equality.
func TestCoordinatorBackupStateCodec(t *testing.T) {
	cs := replication.CoordinatorState{
		Seq:       9,
		PeerAcked: []uint64{9, 7},
		IntIndex:  3,
		EndSeqs:   []replication.EndSeqState{{Epoch: 4, Seq: 8}},
		HaveAcked: true, AckedThrough: 3,
		Archive: []replication.SyncEpoch{{
			Epoch: 4, Tme: 100, Digest: 0xAB, Halted: false,
			Ints: []replication.Interrupt{{Line: 1, Completion: device.Completion{Data: []byte{1}}}},
		}},
	}
	w := NewWriter("TESTMAG1")
	PutCoordinatorState(w, cs)
	blob := w.Finish()
	r, err := NewReader(blob, "TESTMAG1")
	if err != nil {
		t.Fatal(err)
	}
	got := CoordinatorState(r)
	w2 := NewWriter("TESTMAG1")
	PutCoordinatorState(w2, got)
	if string(w2.Finish()) != string(blob) {
		t.Fatal("coordinator state re-encoding differs")
	}

	bs := replication.BackupState{
		Index: 2, Completed: 5, BootTOD: 50,
		Pending: []replication.PendingEpochState{{
			Epoch:  5,
			Ints:   []replication.PendingInterrupt{{Index: 0, Int: replication.Interrupt{Line: 1}}},
			HasTme: true, Tme: 123,
			HasEnd: true, End: replication.PendingEnd{Seq: 7, Digest: 0xCD},
		}},
		Coordinator: &cs,
	}
	w3 := NewWriter("TESTMAG1")
	PutBackupState(w3, bs)
	blob3 := w3.Finish()
	r3, err := NewReader(blob3, "TESTMAG1")
	if err != nil {
		t.Fatal(err)
	}
	got3 := BackupState(r3)
	w4 := NewWriter("TESTMAG1")
	PutBackupState(w4, got3)
	if string(w4.Finish()) != string(blob3) {
		t.Fatal("backup state re-encoding differs")
	}
}

// fnvSum is a local FNV-64a for the version-reseal helper.
func fnvSum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
