// Benchmarks regenerating every table and figure of the paper's §4
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated prototype and reports normalized performance via
// b.ReportMetric (metric "np"), with the paper's published value
// alongside (metric "np-paper") for comparison of shape.
//
//	go test -bench=. -benchmem
package hft

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sim"
)

// benchNP runs one configuration per iteration and reports the measured
// and paper normalized performance.
func benchNP(b *testing.B, kind uint32, el uint64, proto replication.Protocol, link netsim.LinkConfig, paper float64) {
	b.Helper()
	scale := harness.QuickScale()
	var np float64
	for i := 0; i < b.N; i++ {
		np, _, _ = harness.Measure(scale, kind, el, proto, link)
	}
	b.ReportMetric(np, "np")
	if paper > 0 {
		b.ReportMetric(paper, "np-paper")
	}
}

// BenchmarkFigure2 regenerates Figure 2's measured points: the
// CPU-intensive workload under the original protocol at the paper's
// measured epoch lengths (paper: 22.24, 11.83, 6.50, 3.83).
func BenchmarkFigure2(b *testing.B) {
	paper := map[uint64]float64{1024: 22.24, 2048: 11.83, 4096: 6.50, 8192: 3.83}
	for _, el := range []uint64{1024, 2048, 4096, 8192} {
		b.Run(fmt.Sprintf("EL=%d", el), func(b *testing.B) {
			benchNP(b, guest.WorkloadCPU, el, replication.ProtocolOld, netsim.LinkConfig{}, paper[el])
		})
	}
}

// BenchmarkFigure3 regenerates Figure 3's measured points: the disk
// write and read benchmarks (paper write: 1.87/1.71/1.67/1.64; read:
// 2.32/2.10/2.03/1.98).
func BenchmarkFigure3(b *testing.B) {
	paper := perfmodel.Table1Paper()
	for _, wl := range []struct {
		name string
		kind uint32
	}{{"write", guest.WorkloadDiskWrite}, {"read", guest.WorkloadDiskRead}} {
		for _, el := range []uint64{1024, 2048, 4096, 8192} {
			b.Run(fmt.Sprintf("%s/EL=%d", wl.name, el), func(b *testing.B) {
				benchNP(b, wl.kind, el, replication.ProtocolOld, netsim.LinkConfig{},
					paper[wl.name][int(el)][0])
			})
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4's comparison: the CPU workload
// over the Ethernet and ATM link models (paper at 32K: 1.84 vs 1.66;
// measured points taken at 4K and 8K where the contrast is visible).
func BenchmarkFigure4(b *testing.B) {
	for _, link := range []struct {
		name string
		cfg  netsim.LinkConfig
	}{{"ethernet", netsim.Ethernet10("")}, {"atm", netsim.ATM155("")}} {
		for _, el := range []uint64{4096, 8192} {
			b.Run(fmt.Sprintf("%s/EL=%d", link.name, el), func(b *testing.B) {
				benchNP(b, guest.WorkloadCPU, el, replication.ProtocolOld, link.cfg, 0)
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1: all three workloads at the four
// measured epoch lengths under BOTH protocols.
func BenchmarkTable1(b *testing.B) {
	paper := perfmodel.Table1Paper()
	kinds := map[string]uint32{
		"cpu":   guest.WorkloadCPU,
		"write": guest.WorkloadDiskWrite,
		"read":  guest.WorkloadDiskRead,
	}
	for _, wl := range []string{"cpu", "write", "read"} {
		for _, el := range []uint64{1024, 2048, 4096, 8192} {
			for pi, proto := range []replication.Protocol{replication.ProtocolOld, replication.ProtocolNew} {
				b.Run(fmt.Sprintf("%s/%s/EL=%d", wl, proto, el), func(b *testing.B) {
					benchNP(b, kinds[wl], el, proto, netsim.LinkConfig{}, paper[wl][int(el)][pi])
				})
			}
		}
	}
}

// BenchmarkEndpoint385K evaluates the HP-UX maximum epoch length through
// the analytic model (the paper's 1.24 headline); running 385K-instruction
// epochs on the simulator adds nothing beyond the model here.
func BenchmarkEndpoint385K(b *testing.B) {
	p := perfmodel.PaperCPU()
	var np float64
	for i := 0; i < b.N; i++ {
		np = perfmodel.NPC(p, perfmodel.HPUXMaxEpoch)
	}
	b.ReportMetric(np, "np")
	b.ReportMetric(1.24, "np-paper")
}

// --- substrate micro-benchmarks -------------------------------------

// BenchmarkMachineStep measures the PA-lite interpreter's raw speed.
func BenchmarkMachineStep(b *testing.B) {
	p := asm.MustAssemble("bench.s", `
	loop:
		addi r1, r1, 1
		xor  r2, r2, r1
		slli r3, r1, 2
		add  r2, r2, r3
		b loop
	`)
	m := machine.New(machine.Config{})
	m.LoadProgram(p.Origin, p.Words, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/instr")
}

// BenchmarkMachineRun measures the batched executor on the same loop:
// the translated-run fast path that the hypervisor and bare drivers use.
func BenchmarkMachineRun(b *testing.B) {
	p := asm.MustAssemble("bench.s", `
	loop:
		addi r1, r1, 1
		xor  r2, r2, r1
		slli r3, r1, 2
		add  r2, r2, r3
		b loop
	`)
	m := machine.New(machine.Config{})
	m.LoadProgram(p.Origin, p.Words, 0)
	b.ResetTimer()
	for n := uint64(b.N); n > 0; {
		rr := m.Run(n)
		n -= rr.Executed
		if rr.Trap != 0 || rr.Halted {
			b.Fatalf("unexpected exit: %+v", rr.StepResult)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/instr")
}

// BenchmarkHypervisorEpoch measures the cost of running one epoch under
// the hypervisor (simulation-host time, not virtual time): b.N epochs of
// EpochLength instructions each, driven directly against one node's
// hypervisor with the boundary processing a primary would perform.
func BenchmarkHypervisorEpoch(b *testing.B) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	pair := platform.NewPair(k, platform.Config{
		Machine:    machine.Config{MemBytes: harness.GuestMemBytes},
		Hypervisor: hypervisor.Config{EpochLength: 1024},
	})
	hv := pair.Primary.HV
	p := guest.Program()
	hv.Boot(p.Origin, p.Words, 0)
	// Effectively endless: the workload outlasts any b.N the runner picks.
	guest.Configure(pair.Primary.M, guest.CPUIntensive(1<<30))
	b.ResetTimer()
	k.Spawn("bench", func(pr *sim.Proc) {
		for i := 0; i < b.N && !hv.Halted(); i++ {
			hv.RunEpoch(pr)
			hv.TimerInterruptsDue(hv.M.TOD())
			hv.DeliverBuffered()
			hv.ChargeBoundary(pr)
			hv.SetTODBase(hv.M.TOD())
		}
		pr.Kernel().Stop()
	})
	k.Run()
	if hv.Halted() {
		b.Fatal("guest halted before the benchmark finished")
	}
	b.ReportMetric(float64(hv.GuestInstructions())/float64(b.N), "instr/epoch")
}

// BenchmarkReplicatedPair measures the full §4 critical path the paper's
// figures are built from: one primary + one backup over the Ethernet
// model, running the CPU workload end to end under the original
// protocol.
func BenchmarkReplicatedPair(b *testing.B) {
	w := guest.CPUIntensive(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := harness.RunReplicated(harness.ReplicatedOptions{
			Seed:        1,
			Workload:    w,
			EpochLength: 1024,
			Protocol:    replication.ProtocolOld,
			Link:        netsim.Ethernet10(""),
		})
		if res.Guest.Panic != 0 {
			b.Fatal("guest panic")
		}
	}
}

// BenchmarkAssembler measures kernel assembly speed.
func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble("kernel.s", guest.KernelSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimKernel measures the discrete-event kernel's event
// throughput. Must report 0 allocs/op: events are pooled.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel(1)
	count := 0
	var schedule func()
	schedule = func() {
		count++
		if count < b.N {
			k.After(10, schedule)
		}
	}
	k.After(10, schedule)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSleep measures the process Sleep path — the simulated
// machines' per-chunk operation. Must report 0 allocs/op: the sole
// sleeper advances the clock in place without heap or handoff traffic.
func BenchmarkProcSleep(b *testing.B) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	k.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	k.Run()
}

// BenchmarkProcSleepPair measures two processes alternating sleeps — the
// replicated pair's chunk interleaving, where every sleep hands the
// token to the other machine. Must also be allocation-free.
func BenchmarkProcSleepPair(b *testing.B) {
	k := sim.NewKernel(1)
	defer k.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for _, name := range []string{"a", "b"} {
		k.Spawn(name, func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(10)
			}
		})
	}
	k.Run()
}
