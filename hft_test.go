package hft

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNormalizedPerformanceCPU(t *testing.T) {
	np, err := NormalizedPerformance(Config{EpochLength: 4096}, CPUIntensive(5000))
	if err != nil {
		t.Fatal(err)
	}
	if np <= 1 {
		t.Errorf("np = %.3f, want > 1", np)
	}
	// The paper's regime at 4K epochs.
	if np < 3 || np > 12 {
		t.Errorf("np = %.3f, expected near the paper's 6.5", np)
	}
}

func TestRunBareAndReplicatedAgree(t *testing.T) {
	cfg := Config{EpochLength: 2048}
	w := CPUIntensive(3000)
	bare, err := RunBare(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Checksum != repl.Checksum {
		t.Errorf("checksums differ: %#x vs %#x", bare.Checksum, repl.Checksum)
	}
	if bare.Console != repl.Console {
		t.Errorf("consoles differ: %q vs %q", bare.Console, repl.Console)
	}
	if repl.Divergences != 0 {
		t.Errorf("divergences = %d", repl.Divergences)
	}
	if repl.MessagesSent == 0 {
		t.Error("no protocol messages sent")
	}
}

func TestFailoverThroughPublicAPI(t *testing.T) {
	cfg := Config{
		EpochLength:      4096,
		FailPrimaryAt:    5 * Millisecond,
		DiskReadLatency:  500 * Microsecond,
		DiskWriteLatency: 600 * Microsecond,
	}
	w := DiskWrite(3, 4096)
	bare, err := RunBare(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !repl.Promoted {
		t.Fatal("backup did not promote")
	}
	if repl.GuestPanic != 0 {
		t.Fatalf("guest panic %#x", repl.GuestPanic)
	}
	if repl.Checksum != bare.Checksum {
		t.Errorf("failover checksum %#x != bare %#x", repl.Checksum, bare.Checksum)
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := Run(Config{EpochLength: 500000}, CPUIntensive(10))
	if err == nil || !strings.Contains(err.Error(), "385,000") {
		t.Errorf("oversized epoch accepted: %v", err)
	}
	_, err = Run(Config{Link: "token-ring"}, CPUIntensive(10))
	if err == nil || !strings.Contains(err.Error(), "unknown link") {
		t.Errorf("bad link accepted: %v", err)
	}
}

func TestProtocolComparison(t *testing.T) {
	w := CPUIntensive(5000)
	oldNP, err := NormalizedPerformance(Config{EpochLength: 2048, Protocol: ProtocolOld}, w)
	if err != nil {
		t.Fatal(err)
	}
	newNP, err := NormalizedPerformance(Config{EpochLength: 2048, Protocol: ProtocolNew}, w)
	if err != nil {
		t.Fatal(err)
	}
	if newNP >= oldNP {
		t.Errorf("revised protocol (%.2f) not faster than original (%.2f)", newNP, oldNP)
	}
}

func TestLinkComparison(t *testing.T) {
	w := CPUIntensive(5000)
	eth, err := NormalizedPerformance(Config{EpochLength: 4096, Link: LinkEthernet10}, w)
	if err != nil {
		t.Fatal(err)
	}
	atm, err := NormalizedPerformance(Config{EpochLength: 4096, Link: LinkATM155}, w)
	if err != nil {
		t.Fatal(err)
	}
	if atm >= eth {
		t.Errorf("ATM (%.2f) not faster than Ethernet (%.2f)", atm, eth)
	}
}

func TestSeedReproducibility(t *testing.T) {
	w := DiskRead(2, 2048)
	cfg := Config{EpochLength: 4096, Seed: 99,
		DiskReadLatency: 300 * Microsecond, DiskWriteLatency: 300 * Microsecond}
	a, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Checksum != b.Checksum {
		t.Errorf("same seed, different runs: %v/%#x vs %v/%#x", a.Time, a.Checksum, b.Time, b.Checksum)
	}
}

func TestTwoFaultToleranceThroughPublicAPI(t *testing.T) {
	cfg := Config{
		EpochLength:      4096,
		Backups:          2,
		DiskReadLatency:  400 * Microsecond,
		DiskWriteLatency: 500 * Microsecond,
		FailPrimaryAt:    2 * Millisecond,
		FailBackupAt:     []Duration{120 * Millisecond},
	}
	w := DiskWrite(3, 2048)
	bare, err := RunBare(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !repl.Promoted {
		t.Fatal("no promotion under double failure")
	}
	if repl.GuestPanic != 0 {
		t.Fatalf("guest panic %#x", repl.GuestPanic)
	}
	if repl.Checksum != bare.Checksum {
		t.Errorf("double-failure checksum %#x != bare %#x", repl.Checksum, bare.Checksum)
	}
}

func TestDurationConstants(t *testing.T) {
	if Second != sim.Second || Millisecond != sim.Millisecond || Microsecond != sim.Microsecond {
		t.Error("duration constants drifted from sim package")
	}
}
