package hft

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// goldenCase mirrors tools/compatgolden's record: the inputs of one
// old-API configuration and the outputs recorded on the pre-Cluster
// one-shot implementation. The differential suite asserts the session
// redesign reproduces every recorded value byte for byte.
type goldenCase struct {
	Name string `json:"name"`

	Workload string  `json:"workload"`
	Iters    uint32  `json:"iters,omitempty"`
	Ops      uint32  `json:"ops,omitempty"`
	Count    uint32  `json:"count,omitempty"`
	Epoch    uint64  `json:"epoch"`
	Protocol string  `json:"protocol"`
	Link     string  `json:"link"`
	Seed     int64   `json:"seed,omitempty"`
	FailAtNS int64   `json:"fail_at_ns,omitempty"`
	ReadLat  int64   `json:"read_lat_ns,omitempty"`
	WriteLat int64   `json:"write_lat_ns,omitempty"`
	Backups  int     `json:"backups,omitempty"`
	FailBkNS []int64 `json:"fail_backup_ns,omitempty"`

	BareTimeNS   int64  `json:"bare_time_ns"`
	BareChecksum uint32 `json:"bare_checksum"`
	BareConsole  string `json:"bare_console"`
	ReplTimeNS   int64  `json:"repl_time_ns"`
	ReplChecksum uint32 `json:"repl_checksum"`
	ReplConsole  string `json:"repl_console"`
	Promoted     bool   `json:"promoted"`
	Divergences  uint64 `json:"divergences"`
	Messages     uint64 `json:"messages"`
	Uncertain    uint64 `json:"uncertain"`
	NP           string `json:"np"`
}

func (g goldenCase) config() Config {
	cfg := Config{
		EpochLength:      g.Epoch,
		Link:             Link(g.Link),
		Seed:             g.Seed,
		FailPrimaryAt:    Duration(g.FailAtNS),
		DiskReadLatency:  Duration(g.ReadLat),
		DiskWriteLatency: Duration(g.WriteLat),
		Backups:          g.Backups,
	}
	if g.Protocol == "new" {
		cfg.Protocol = ProtocolNew
	}
	for _, ns := range g.FailBkNS {
		cfg.FailBackupAt = append(cfg.FailBackupAt, Duration(ns))
	}
	return cfg
}

func (g goldenCase) workload() Workload {
	switch g.Workload {
	case "cpu":
		return CPUIntensive(g.Iters)
	case "write":
		return DiskWrite(g.Ops, g.Count)
	case "read":
		return DiskRead(g.Ops, g.Count)
	}
	panic("unknown workload " + g.Workload)
}

func loadGoldens(t *testing.T) []goldenCase {
	t.Helper()
	raw, err := os.ReadFile("testdata/compat_golden.json")
	if err != nil {
		t.Fatalf("reading goldens (regenerate with `go run ./tools/compatgolden > testdata/compat_golden.json`): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatalf("decoding goldens: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("empty golden file")
	}
	return cases
}

// TestBackCompatDifferential asserts the old one-shot API — now thin
// wrappers over Cluster sessions — reproduces the pre-redesign goldens
// exactly: Time, Checksum, Console, Promoted, MessagesSent,
// UncertainSynthesized and NormalizedPerformance, across both
// protocols, both links, a failover run and a double-failure run.
func TestBackCompatDifferential(t *testing.T) {
	for _, g := range loadGoldens(t) {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			cfg, w := g.config(), g.workload()
			bare, err := RunBare(cfg, w)
			if err != nil {
				t.Fatalf("RunBare: %v", err)
			}
			if int64(bare.Time) != g.BareTimeNS || bare.Checksum != g.BareChecksum || bare.Console != g.BareConsole {
				t.Errorf("bare drifted: time %d/%d checksum %#x/%#x console %q/%q",
					bare.Time, g.BareTimeNS, bare.Checksum, g.BareChecksum, bare.Console, g.BareConsole)
			}
			repl, err := Run(cfg, w)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if int64(repl.Time) != g.ReplTimeNS {
				t.Errorf("replicated time drifted: %d != golden %d", repl.Time, g.ReplTimeNS)
			}
			if repl.Checksum != g.ReplChecksum || repl.Console != g.ReplConsole {
				t.Errorf("replicated result drifted: checksum %#x/%#x console %q/%q",
					repl.Checksum, g.ReplChecksum, repl.Console, g.ReplConsole)
			}
			if repl.Promoted != g.Promoted || repl.Divergences != g.Divergences ||
				repl.MessagesSent != g.Messages || repl.UncertainSynthesized != g.Uncertain {
				t.Errorf("protocol stats drifted: promoted %v/%v div %d/%d msgs %d/%d unc %d/%d",
					repl.Promoted, g.Promoted, repl.Divergences, g.Divergences,
					repl.MessagesSent, g.Messages, repl.UncertainSynthesized, g.Uncertain)
			}
			np, err := NormalizedPerformance(cfg, w)
			if err != nil {
				t.Fatalf("NormalizedPerformance: %v", err)
			}
			if got := fmt.Sprintf("%.17g", np); got != g.NP {
				t.Errorf("np drifted: %s != golden %s", got, g.NP)
			}
		})
	}
}

// TestGoldenSlicedSessionDifferential drives each golden configuration
// through a live Cluster advanced in small bounded slices — the
// session-mode execution path — and asserts the terminal result is
// byte-identical to the one-shot golden. Slicing must be invisible.
func TestGoldenSlicedSessionDifferential(t *testing.T) {
	for _, g := range loadGoldens(t) {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			c, err := NewCluster(WithConfig(g.config(), g.workload()))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for !c.Done() {
				if _, err := c.RunFor(3 * Millisecond); err != nil {
					t.Fatal(err)
				}
				if c.Now() > 100*Second {
					t.Fatal("sliced run did not finish")
				}
			}
			res, err := c.Result()
			if err != nil {
				t.Fatal(err)
			}
			if int64(res.Time) != g.ReplTimeNS || res.Checksum != g.ReplChecksum ||
				res.Console != g.ReplConsole || res.Promoted != g.Promoted ||
				res.MessagesSent != g.Messages || res.UncertainSynthesized != g.Uncertain {
				t.Errorf("sliced session drifted from golden: time %d/%d checksum %#x/%#x promoted %v/%v msgs %d/%d",
					res.Time, g.ReplTimeNS, res.Checksum, g.ReplChecksum, res.Promoted, g.Promoted,
					res.MessagesSent, g.Messages)
			}
		})
	}
}
