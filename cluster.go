package hft

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/scsi"
	"repro/internal/session"
	"repro/internal/sim"
)

// Cluster is a long-lived, replicated virtual machine session: a
// primary and its backups under the paper's coordination protocols,
// resident in virtual time. Unlike the one-shot Run, a Cluster boots
// lazily, advances under caller control (RunFor, RunUntil, Wait),
// accepts live perturbations while it runs (FailPrimary, FailBackup,
// SetLinkQuality), and exposes observation as first-class values — a
// Snapshot of epoch/protocol/IO statistics at any virtual time and a
// subscribable Events stream.
//
// A Cluster must be driven from a single goroutine. The channels
// returned by Events may be consumed from any goroutine.
type Cluster struct {
	eng  *session.Engine
	opts *clusterOptions

	// pause is the session's current replayable position and journal is
	// the ordered log of live perturbations applied so far — together
	// with the (deterministic) configuration they ARE the session state,
	// which is what Save serializes and Restore replays. See save.go.
	pause   pausePoint
	journal []journalEntry

	subMu  sync.Mutex
	subs   []*subscriber
	nsubs  atomic.Int32 // publish's lock-free fast path when nobody listens
	closed bool
}

// NewCluster assembles a session from functional options. The
// configuration is validated eagerly — an unknown link, a negative
// backup count, a failure schedule that exceeds the replica set, or a
// zero seed fail here, not inside a later run. The simulation itself
// is constructed lazily, on the first advancement.
func NewCluster(opts ...Option) (*Cluster, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return newCluster(o), nil
}

// newCluster assembles a session from resolved options (shared between
// NewCluster and Restore).
func newCluster(o *clusterOptions) *Cluster {
	c := &Cluster{opts: o}
	c.eng = session.New(session.Options{
		Seed:          o.seed,
		Program:       o.sessionProgram(),
		Bare:          o.bare,
		Disk:          o.diskConfig(),
		ExtraDisks:    o.extraDiskConfigs(),
		Terminal:      o.terminalScript(),
		NIC:           o.nic,
		ClientLoad:    o.clientLoadConfig(),
		EpochLength:   o.epochLength,
		Protocol:      o.protocol,
		Link:          o.link.LinkParams().linkConfig(),
		FailPrimaryAt: sim.Time(o.failPrimaryAt),
		DetectTimeout: sim.Time(o.detectTimeout),
		Backups:       o.backups,
		FailBackupAt:  o.failBackupTimes(),
		Observer:      c.publish,
		DiskEvents:    true,
		SharedImage:   o.sharedImage,
		OutputCommit:  o.outputCommitConfig(),
	})
	return c
}

// ErrClosed reports use of a closed Cluster.
var ErrClosed = errors.New("hft: cluster is closed")

// ErrCompleted reports a perturbation applied after the workload
// completed (Done reports true): there is no live cluster left to
// perturb. FailBackup, SetLinkQuality and AddBackup return it;
// FailPrimary, which predates error returns, documents the same
// condition as a non-journaling no-op. Test with errors.Is.
var ErrCompleted = errors.New("hft: workload already complete")

// ErrStalled reports a wedged coordinator: the session's scheduler
// kept dispatching but virtual time stopped advancing. The underlying
// error names the blocked process. Test with errors.Is.
var ErrStalled = session.ErrStalled

// Now returns the session's current virtual time.
func (c *Cluster) Now() Duration { return c.eng.Now() }

// Done reports whether the guest workload has completed.
func (c *Cluster) Done() bool { return c.eng.Done() }

// RunFor boots the cluster if needed and advances it by d of virtual
// time, then reports the resulting state. Advancing a completed
// session is a no-op. If the bounded-progress watchdog trips (virtual
// time pinned while the scheduler spins), RunFor returns the snapshot
// taken at the stall alongside an error matching ErrStalled.
func (c *Cluster) RunFor(d Duration) (Snapshot, error) {
	if c.closed {
		return Snapshot{}, ErrClosed
	}
	target := Duration(c.eng.Now()) + d
	err := c.eng.RunFor(sim.Time(d))
	c.pause = pausePoint{kind: pauseAtTime, time: target}
	return c.Snapshot(), err
}

// RunUntil advances the cluster until pred holds. The predicate is
// evaluated before starting and then at every epoch commit — the
// protocol's natural observation points — so the session pauses on a
// consistent boundary.
//
// Boundary sampling is the contract, not an approximation: a condition
// that becomes true and false again WITHIN one epoch — a transient
// counter value, a virtual-time window narrower than the epoch — is
// never observed, because between commits the simulation is indivisible
// from the session's point of view. At large epoch lengths (the paper
// evaluates up to 32K instructions; HP-UX tolerates 385K) an epoch
// spans hundreds of microseconds of virtual time, so predicates must be
// monotonic (once true, stays true) or phrased over cumulative
// quantities (epoch count, instruction count, message totals) to be
// reliably caught. TestRunUntilBoundarySampling pins this behavior.
//
// RunUntil returns when pred holds or the workload completes,
// whichever is first. The predicate must observe the Snapshot only —
// mutating the cluster from inside a predicate is not supported.
func (c *Cluster) RunUntil(pred func(Snapshot) bool) (Snapshot, error) {
	if c.closed {
		return Snapshot{}, ErrClosed
	}
	pre := c.position()
	err := c.eng.RunUntil(func() bool { return pred(c.Snapshot()) })
	c.pauseAtBoundary(pre)
	return c.Snapshot(), err
}

// position is the cluster's replay-relevant coordinate: how far the
// session has advanced, in every dimension a pause point can encode.
type position struct {
	now     Duration
	commits uint64
	done    bool
}

func (c *Cluster) position() position {
	return position{now: Duration(c.eng.Now()), commits: c.eng.Commits(), done: c.eng.Done()}
}

// pauseAtBoundary records the current epoch-commit pause position. pre
// is the position when the advancing call began: if the session did not
// move — the predicate was already true, the workload already done —
// the previous pause coordinate is kept. Rewriting it would rewind the
// replay: a commit ordinal replays to the FIRST instant it was reached,
// which precedes a later time-pause at the same ordinal (run past a
// commit with RunFor, then let a no-op RunUntil overwrite the pause,
// and a restored session would re-apply later perturbations — and
// verify its capture — at the earlier instant).
func (c *Cluster) pauseAtBoundary(pre position) {
	if c.position() == pre {
		return
	}
	if c.eng.Done() {
		c.pause = pausePoint{kind: pauseAtDone}
		return
	}
	c.pause = pausePoint{kind: pauseAtCommit, commits: c.eng.Commits()}
}

// Wait drives the cluster until the guest workload completes, then
// returns the terminal Result. Cancellation is honored at epoch
// boundaries: if ctx is canceled the session pauses (resumable by any
// advancement method) and Wait returns ctx's error.
func (c *Cluster) Wait(ctx context.Context) (Result, error) {
	if c.closed {
		return Result{}, ErrClosed
	}
	var cancelled func() bool
	if ctx != nil && ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}
	pre := c.position()
	err := c.eng.RunToCompletion(cancelled)
	c.pauseAtBoundary(pre)
	if err != nil {
		return Result{}, err
	}
	if !c.eng.Done() {
		return Result{}, ctx.Err()
	}
	return c.Result()
}

// Result returns the terminal report. It errors until the workload has
// completed (use Snapshot for live observation).
func (c *Cluster) Result() (Result, error) {
	r, err := c.eng.Result()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Time:                 r.Time,
		Checksum:             r.Guest.Checksum,
		Console:              r.Console,
		Promoted:             r.Promoted,
		Divergences:          r.BackupStats.Divergences,
		MessagesSent:         r.PrimaryStats.MessagesSent,
		UncertainSynthesized: r.BackupStats.UncertainSynth,
		GuestPanic:           r.Guest.Panic,
		NetReplies:           r.NetReplies,
	}, nil
}

// ServiceLatencies reports the client-observed request latency
// distribution of the simulated client population — virtual time from a
// request's FIRST transmission to its reply's client-side arrival, so
// retransmission waits during a failover land in the tail instead of
// disappearing. The second return is false when the cluster has no
// client load (or has not booted).
func (c *Cluster) ServiceLatencies() (ServiceLatencies, bool) {
	cs := c.eng.Clients()
	if cs == nil {
		return ServiceLatencies{}, false
	}
	m := cs.Measure()
	sl := ServiceLatencies{
		Requests:    m.Requests,
		Answered:    m.Answered,
		Retransmits: m.Retransmits,
		P50:         Duration(m.P50),
		P99:         Duration(m.P99),
		P999:        Duration(m.P999),
		Max:         Duration(m.Max),
	}
	if lats := c.eng.CommitLatencies(); len(lats) > 0 {
		sorted := make([]sim.Time, len(lats))
		copy(sorted, lats)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		q := func(p float64) Duration {
			i := int(p * float64(len(sorted)-1))
			return Duration(sorted[i])
		}
		sl.CommitP50, sl.CommitP99 = q(0.50), q(0.99)
	}
	return sl, true
}

// ServiceBlackout reports the client-visible service gap around virtual
// time at — typically a failover instant: the interval from the last
// reply arriving at or before it to the first reply arriving after it.
// Zero when the cluster has no client load or no reply follows at.
func (c *Cluster) ServiceBlackout(at Duration) Duration {
	cs := c.eng.Clients()
	if cs == nil {
		return 0
	}
	return Duration(cs.Blackout(sim.Time(at)))
}

// ServiceLatencies is the client-observed latency distribution of a
// cluster's simulated client population (virtual time).
type ServiceLatencies struct {
	// Requests/Answered count distinct requests issued and replies
	// that reached a client; Retransmits counts duplicate transmissions
	// forced by the timeout.
	Requests    int
	Answered    int
	Retransmits uint64
	// P50/P99/P999/Max are latency quantiles over answered requests.
	P50  Duration
	P99  Duration
	P999 Duration
	Max  Duration
	// CommitP50/CommitP99 are output-commit latency quantiles — virtual
	// time from an epoch's first deferred environment output to its
	// release on acknowledgment. Zero unless WithOutputCommit is on and
	// at least one epoch released output.
	CommitP50 Duration
	CommitP99 Duration
}

// FailPrimary failstops the primary's processor at the current virtual
// time: execution ceases and all its communication is severed, exactly
// as Config.FailPrimaryAt would have done on a schedule. The backup
// detects the silence, finishes the failover epoch, synthesizes
// uncertain interrupts for outstanding I/O (rule P7) and takes over.
//
// After the workload completes (Done reports true), or if the primary
// already failed, FailPrimary is a no-op and is NOT journaled — a
// checkpoint never records a perturbation that had no effect.
func (c *Cluster) FailPrimary() {
	if c.closed {
		return
	}
	if c.eng.FailPrimary() {
		c.record(journalEntry{action: actFailPrimary})
	}
}

// FailBackup failstops backup i (1-based priority index) at the
// current virtual time. After the workload completes it returns
// ErrCompleted. Failstopping an already-failed backup is a no-op (a
// dead processor cannot die again) and is not re-journaled.
func (c *Cluster) FailBackup(i int) error {
	if c.closed {
		return ErrClosed
	}
	if c.eng.Done() {
		return ErrCompleted
	}
	already := c.eng.BackupFailed(i)
	if err := c.eng.FailBackup(i); err != nil {
		return err
	}
	if !already {
		c.record(journalEntry{action: actFailBackup, backup: i})
	}
	return nil
}

// SetLinkQuality degrades (or restores) every inter-hypervisor link
// mid-run: messages already serialized keep their scheduled delivery;
// future protocol traffic pays the new costs. Links created by a LATER
// AddBackup start at the configured link model; re-apply the quality
// after reintegration if the degradation should cover the new channels
// too. After the workload completes it returns ErrCompleted (there are
// no links left to degrade).
func (c *Cluster) SetLinkQuality(q LinkQuality) error {
	if c.closed {
		return ErrClosed
	}
	if c.eng.Done() {
		return ErrCompleted
	}
	if err := c.eng.SetLinkQuality(q.quality()); err != nil {
		return err
	}
	c.record(journalEntry{action: actSetLink, quality: q})
	return nil
}

// AddBackup reintegrates a new backup into the running cluster by live
// state transfer — the repair half of the paper's fault-tolerance
// story (§5): after a failstop and promotion the system runs
// unprotected until a repaired processor rejoins. The session advances
// to the acting coordinator's next epoch commit (virtual time moves),
// captures its complete virtual-machine state, and ships the image
// through the simulated link, so the transfer is charged to virtual
// time and shows up in normalized performance. The cluster keeps
// executing while the image is in flight; the new backup — at the
// lowest priority, one past the current highest index — installs it
// and follows the protocol stream from the transferred boundary on,
// trailing the acting coordinator by roughly the transfer duration for
// the rest of the run. Its receivers acknowledge the protocol stream
// from the first instant (the joining hypervisor is alive; only the
// guest image is in transit), so neither protocol's acknowledgement
// waits stall on the migration. If the transfer's source processor
// failstops with the image in flight, the reintegration is lost and
// the joiner withdraws.
//
// AddBackup returns the new node's index (primary = 0, backups from 1).
func (c *Cluster) AddBackup(opts ...AddBackupOption) (int, error) {
	if c.closed {
		return 0, ErrClosed
	}
	ao := addBackupOptions{link: c.opts.link.LinkParams()}
	for _, opt := range opts {
		if opt == nil {
			return 0, errors.New("hft: nil AddBackupOption")
		}
		if err := opt(&ao); err != nil {
			return 0, err
		}
	}
	if c.eng.Done() {
		return 0, ErrCompleted
	}
	prePause := c.pause
	prePos := c.position()
	n, err := c.eng.AddBackup(session.AddBackupConfig{Link: ao.link.linkConfig()})
	if err != nil {
		c.pauseAtBoundary(prePos)
		if errors.Is(err, session.ErrCompleted) {
			err = ErrCompleted
		}
		return 0, err
	}
	c.journal = append(c.journal, journalEntry{pause: prePause, action: actAddBackup, link: ao.link})
	c.pauseAtBoundary(prePos)
	return n, nil
}

// AddBackupOption configures one AddBackup call.
type AddBackupOption func(*addBackupOptions) error

type addBackupOptions struct {
	link LinkParams
}

// AddBackupLink sets the channel model for the new node's links to
// every existing node — the state transfer itself and all subsequent
// protocol traffic to the joiner travel over it. Default: the
// cluster's configured link model.
func AddBackupLink(m LinkModel) AddBackupOption {
	return func(o *addBackupOptions) error {
		if m == nil {
			return errors.New("hft: nil LinkModel")
		}
		p := m.LinkParams()
		if p.BitsPerSecond <= 0 {
			return fmt.Errorf("hft: link %q has non-positive bandwidth %d", p.Name, p.BitsPerSecond)
		}
		if p.Latency < 0 || p.SetupTime < 0 || p.MTU < 0 {
			return fmt.Errorf("hft: link %q has negative parameters", p.Name)
		}
		o.link = p
		return nil
	}
}

// record appends a journal entry at the current pause position.
func (c *Cluster) record(e journalEntry) {
	e.pause = c.pause
	c.journal = append(c.journal, e)
}

// Snapshot captures the cluster's observable state at the current
// virtual time — valid mid-run, not just at completion.
func (c *Cluster) Snapshot() Snapshot {
	s := c.eng.Snapshot()
	return Snapshot{
		Now:                  Duration(s.Now),
		Booted:               s.Booted,
		Done:                 s.Done,
		Nodes:                s.Nodes,
		Acting:               s.Acting,
		Epochs:               s.Epochs,
		Commits:              s.Commits,
		GuestInstructions:    s.GuestInstructions,
		Promoted:             s.Promoted,
		Halted:               s.Halted,
		MessagesSent:         s.MessagesSent,
		BytesSent:            s.BytesSent,
		AcksReceived:         s.AcksReceived,
		IntsForwarded:        s.IntsForwarded,
		Divergences:          s.Divergences,
		UncertainSynthesized: s.UncertainSynthesized,
		PeersExcluded:        s.PeersExcluded,
		DiskOps:              s.DiskOps,
		DiskUncertain:        s.DiskUncertain,
		Console:              s.Console,
		NetRequests:          s.NetRequests,
		NetAnswered:          s.NetAnswered,
		NetRetransmits:       s.NetRetransmits,
	}
}

// Snapshot is a point-in-time view of a running (or completed) cluster.
type Snapshot struct {
	// Now is the virtual time of the observation.
	Now Duration
	// Booted reports whether the simulation has been constructed.
	Booted bool
	// Done reports whether the guest workload has completed.
	Done bool
	// Nodes is the replica count (primary + backups).
	Nodes int
	// Acting is the node currently interacting with the environment
	// (0 until a failover, then the promoted backup's index).
	Acting int
	// Epochs is the acting coordinator's committed epoch count.
	Epochs uint64
	// Commits is the cumulative count of acting-coordinator epoch
	// commits since boot — the session's replayable pause coordinate.
	// Unlike Epochs it never resets across failovers: a promoted
	// backup's first commit continues the sequence, so "commit #N"
	// names the same kernel state on every replay.
	Commits uint64
	// GuestInstructions is the acting node's retired instruction count.
	GuestInstructions uint64
	// Promoted reports whether any failover has occurred.
	Promoted bool
	// Halted reports whether the acting node's guest has halted.
	Halted bool
	// Protocol counters, summed over every engine that has acted.
	MessagesSent         uint64
	BytesSent            uint64
	AcksReceived         uint64
	IntsForwarded        uint64
	Divergences          uint64
	UncertainSynthesized uint64
	// PeersExcluded counts replicas a coordinator dropped from its
	// acknowledgement gates after prolonged ack silence (the liveness
	// backstop, 10x the detect timeout). Nonzero means the replica set
	// is effectively smaller than configured: a subsequent coordinator
	// failstop in that state can lose the computation.
	PeersExcluded uint64
	// Environment counters.
	DiskOps       uint64
	DiskUncertain uint64
	// Console is the environment-visible console transcript so far.
	Console string
	// Network-service counters (zero without WithClientLoad):
	// NetRequests counts distinct requests issued by the client
	// population, NetAnswered those whose reply reached a client, and
	// NetRetransmits the duplicate transmissions its timeouts forced.
	NetRequests    int
	NetAnswered    int
	NetRetransmits uint64
}

// quality converts to the simulator's representation.
func (q LinkQuality) quality() netsim.Quality {
	return netsim.Quality{
		BitsPerSecond: q.BitsPerSecond,
		Latency:       sim.Time(q.Latency),
		MTU:           q.MTU,
		DropNext:      q.DropNext,
	}
}

// Close tears the session down, terminating its simulation and closing
// every Events channel. The terminal Result, if the workload completed,
// remains readable. Idempotent.
func (c *Cluster) Close() error {
	c.subMu.Lock()
	already := c.closed
	c.closed = true
	subs := c.subs
	c.subs = nil
	c.nsubs.Store(0)
	c.subMu.Unlock()
	if already {
		return nil
	}
	c.eng.Close()
	for _, s := range subs {
		s.close()
	}
	return nil
}

// Events returns a subscription to the cluster's live event stream:
// epoch commits, backup digest checks, promotions, uncertain-interrupt
// synthesis, divergences, injected failures, link-quality changes, disk
// operations and completion. Each call returns an independent channel
// carrying every event from the subscription on; the channel is
// unbounded (a slow consumer cannot stall the simulation) and closes
// when the cluster is closed. A consumer that stops reading forfeits
// whatever backlog remains at Close. Safe to consume from any
// goroutine.
func (c *Cluster) Events() <-chan Event {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	s := newSubscriber()
	if c.closed {
		s.close()
		return s.ch
	}
	c.subs = append(c.subs, s)
	c.nsubs.Store(int32(len(c.subs)))
	return s.ch
}

// publish fans a session event out to the subscribers (installed as
// the engine's observer; runs on the driving goroutine). With no
// subscribers — every back-compat one-shot run — it is a single atomic
// load.
func (c *Cluster) publish(ev session.Event) {
	if c.nsubs.Load() == 0 {
		return
	}
	c.subMu.Lock()
	subs := c.subs
	c.subMu.Unlock()
	if len(subs) == 0 {
		return
	}
	pub := publicEvent(ev)
	for _, s := range subs {
		s.publish(pub)
	}
}

// EventKind enumerates cluster events.
type EventKind int

// Cluster event kinds.
const (
	// EventEpochCommitted: the acting coordinator finished an epoch
	// boundary (Tme shipped, buffered interrupts delivered).
	EventEpochCommitted EventKind = iota
	// EventBackupEpoch: a following backup completed an epoch's
	// boundary processing, including its divergence check.
	EventBackupEpoch
	// EventPromoted: a backup detected coordinator failure and took
	// over (rules P6/P7).
	EventPromoted
	// EventDivergence: a backup's state digest disagreed with the
	// coordinator's (always absent unless deterministic replay is
	// broken — the §3.2 hazard).
	EventDivergence
	// EventFailstop: a processor failstop was injected.
	EventFailstop
	// EventLinkQualityChanged: SetLinkQuality took effect.
	EventLinkQualityChanged
	// EventDiskOp: the shared disk completed an operation.
	EventDiskOp
	// EventCompleted: the guest workload finished everywhere.
	EventCompleted
	// EventBackupAdded: AddBackup reintegrated a new backup by live
	// state transfer (Node is its index, TransferBytes the image size
	// shipped through the link).
	EventBackupAdded
	// EventTerminalInput: the environment delivered scripted terminal
	// input to the shared console (TerminalData returns the bytes;
	// Device reports "console").
	EventTerminalInput
	// EventNetRequest: the cluster's NIC accepted a distinct client
	// request frame (Request is its id; Device reports "nic").
	// Retransmissions of queued or answered requests are deduped before
	// this point and never emit.
	EventNetRequest
	// EventOutputCommitted: the output-commit engine (WithOutputCommit)
	// released an epoch's deferred environment output after its state
	// message was acknowledged by every live peer. Outputs is the number
	// of operations released, CommitLatency the generation-to-release
	// delay of the epoch's first output (zero when the epoch produced
	// none), Occupancy the epochs still awaiting acknowledgment.
	EventOutputCommitted
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventEpochCommitted:
		return "epoch-committed"
	case EventBackupEpoch:
		return "backup-epoch"
	case EventPromoted:
		return "promoted"
	case EventDivergence:
		return "divergence"
	case EventFailstop:
		return "failstop"
	case EventLinkQualityChanged:
		return "link-quality"
	case EventDiskOp:
		return "disk-op"
	case EventCompleted:
		return "completed"
	case EventBackupAdded:
		return "backup-added"
	case EventTerminalInput:
		return "terminal-input"
	case EventNetRequest:
		return "net-request"
	case EventOutputCommitted:
		return "output-committed"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// DiskOp describes one EventDiskOp.
type DiskOp struct {
	// Host is the adapter that issued the operation (node index).
	Host int
	// Write distinguishes writes from reads.
	Write bool
	// Block is the operated block number.
	Block uint32
	// Uncertain reports a CHECK_CONDITION completion (IO2).
	Uncertain bool
	// Committed reports whether the operation actually took effect.
	Committed bool
}

// Event is one observation from a running cluster.
type Event struct {
	// Kind discriminates the payload fields below.
	Kind EventKind
	// Time is the virtual time of the occurrence.
	Time Duration
	// Node is the replica concerned (primary = 0, backup i = i).
	Node int
	// Epoch is the protocol epoch concerned (epoch-scoped kinds).
	Epoch uint64

	// Tme is the clock value shipped at an epoch commit.
	Tme uint32
	// Halted marks the committing epoch as the guest's last.
	Halted bool
	// DigestMatch reports a backup's divergence-check outcome.
	DigestMatch bool
	// Uncertain is the number of uncertain interrupts synthesized at a
	// promotion (rule P7).
	Uncertain int
	// Digests carries the mismatched state digests of a divergence:
	// coordinator's, then the local one.
	Digests [2]uint64
	// Disk describes a disk operation.
	Disk DiskOp
	// TransferBytes is the state-transfer image size of a backup-added
	// event.
	TransferBytes uint64
	// Request is the request id of an EventNetRequest.
	Request uint32
	// Outputs is the number of deferred operations an
	// EventOutputCommitted released; CommitLatency the delay from the
	// epoch's first output to the release; Occupancy the epochs still
	// in the acknowledgment window afterwards.
	Outputs       int
	CommitLatency Duration
	Occupancy     int

	// dev tags device-scoped events with the stable device identifier
	// ("disk0", "disk1", "console"); see Device.
	dev string
	// termData carries a terminal-input event's bytes; see TerminalData.
	termData string
}

// Device returns the stable device identifier an event concerns:
// "disk0", "disk1", ... for EventDiskOp, "console" for
// EventTerminalInput, and "" for events that are not device-scoped.
func (e Event) Device() string { return e.dev }

// TerminalData returns the input bytes of an EventTerminalInput ("" for
// other kinds).
func (e Event) TerminalData() string { return e.termData }

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case EventEpochCommitted:
		return fmt.Sprintf("[%v] node%d epoch %d committed (tme=%d halted=%v)", e.Time, e.Node, e.Epoch, e.Tme, e.Halted)
	case EventBackupEpoch:
		return fmt.Sprintf("[%v] node%d epoch %d checked (match=%v)", e.Time, e.Node, e.Epoch, e.DigestMatch)
	case EventPromoted:
		return fmt.Sprintf("[%v] node%d PROMOTED at epoch %d (%d uncertain synthesized)", e.Time, e.Node, e.Epoch, e.Uncertain)
	case EventDivergence:
		return fmt.Sprintf("[%v] node%d DIVERGED at epoch %d (%x != %x)", e.Time, e.Node, e.Epoch, e.Digests[0], e.Digests[1])
	case EventFailstop:
		return fmt.Sprintf("[%v] node%d failstopped", e.Time, e.Node)
	case EventLinkQualityChanged:
		return fmt.Sprintf("[%v] link quality changed", e.Time)
	case EventDiskOp:
		op := "read"
		if e.Disk.Write {
			op = "write"
		}
		return fmt.Sprintf("[%v] disk %s block %d by node%d (uncertain=%v)", e.Time, op, e.Disk.Block, e.Disk.Host, e.Disk.Uncertain)
	case EventCompleted:
		return fmt.Sprintf("[%v] workload completed (acting node%d)", e.Time, e.Node)
	case EventBackupAdded:
		return fmt.Sprintf("[%v] node%d JOINED after epoch %d (%d-byte state transfer)", e.Time, e.Node, e.Epoch, e.TransferBytes)
	case EventTerminalInput:
		return fmt.Sprintf("[%v] terminal input %q", e.Time, e.termData)
	case EventNetRequest:
		return fmt.Sprintf("[%v] net request %d accepted", e.Time, e.Request)
	case EventOutputCommitted:
		return fmt.Sprintf("[%v] node%d epoch %d output committed (%d ops, latency %v, %d in flight)",
			e.Time, e.Node, e.Epoch, e.Outputs, e.CommitLatency, e.Occupancy)
	}
	return fmt.Sprintf("[%v] %s", e.Time, e.Kind)
}

// publicEvent converts a session event.
func publicEvent(ev session.Event) Event {
	out := Event{
		Time:  Duration(ev.At),
		Node:  ev.Node,
		Epoch: ev.Epoch,
	}
	switch ev.Kind {
	case session.EventEpochCommitted:
		out.Kind = EventEpochCommitted
		out.Tme = ev.Tme
		out.Halted = ev.Halted
	case session.EventBackupEpoch:
		out.Kind = EventBackupEpoch
		out.DigestMatch = ev.Match
	case session.EventPromoted:
		out.Kind = EventPromoted
		out.Uncertain = ev.Count
	case session.EventDivergence:
		out.Kind = EventDivergence
		out.Digests = ev.Digests
	case session.EventFailstop:
		out.Kind = EventFailstop
	case session.EventLinkQuality:
		out.Kind = EventLinkQualityChanged
	case session.EventDiskOp:
		out.Kind = EventDiskOp
		out.Disk = DiskOp{
			Host:      ev.IO.Host,
			Write:     ev.IO.Cmd == scsi.CmdWrite,
			Block:     ev.IO.Block,
			Uncertain: ev.IO.Uncertain,
			Committed: ev.IO.Committed,
		}
		out.dev = fmt.Sprintf("disk%d", ev.Disk)
	case session.EventCompleted:
		out.Kind = EventCompleted
	case session.EventBackupAdded:
		out.Kind = EventBackupAdded
		out.TransferBytes = ev.Bytes
	case session.EventTerminalInput:
		out.Kind = EventTerminalInput
		out.dev = "console"
		out.termData = string(ev.Data)
	case session.EventNetRequest:
		out.Kind = EventNetRequest
		out.dev = "nic"
		out.Request = ev.Req
	case session.EventOutputCommitted:
		out.Kind = EventOutputCommitted
		out.Outputs = ev.Count
		out.CommitLatency = Duration(ev.Latency)
		out.Occupancy = ev.Occupancy
	}
	return out
}

// subscriber is one Events channel: an unbounded queue bridged to the
// channel by a pump goroutine, so the simulation never blocks on a
// slow consumer.
type subscriber struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  sim.Ring[Event] // ring: consumed slots are released, not pinned
	closed bool
	quit   chan struct{} // closed by close(); unblocks an in-flight send
	ch     chan Event
}

func newSubscriber() *subscriber {
	s := &subscriber{ch: make(chan Event, 64), quit: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

func (s *subscriber) publish(ev Event) {
	s.mu.Lock()
	if !s.closed {
		s.queue.Push(ev)
	}
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *subscriber) close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.quit)
	}
	s.cond.Signal()
}

// pump drains the queue into the channel; after close it delivers the
// backlog to a consumer that keeps reading, then closes the channel. A
// consumer that has stopped reading forfeits the remaining backlog: each
// post-close send waits only a short grace period, so an abandoned
// subscription cannot leak its goroutine past teardown.
func (s *subscriber) pump() {
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		ev, ok := s.queue.Pop()
		closed := s.closed
		s.mu.Unlock()
		if !ok {
			close(s.ch)
			return
		}
		if !closed {
			select {
			case s.ch <- ev:
				continue
			case <-s.quit:
				// Closed while blocked on an unread channel: fall
				// through to the post-close grace for this event.
			}
		}
		select {
		case s.ch <- ev:
		case <-time.After(100 * time.Millisecond):
			close(s.ch)
			return
		}
	}
}
