package hft

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/clientsim"
	"repro/internal/console"
	"repro/internal/guest"
	"repro/internal/replication"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// Option configures a Cluster. Options validate eagerly: a bad value
// is reported by NewCluster, before any simulation exists.
type Option func(*clusterOptions) error

// clusterOptions is the resolved configuration.
type clusterOptions struct {
	seed        int64
	workload    Workload
	haveWork    bool
	program     Program
	bare        bool
	epochLength uint64
	protocol    Protocol
	link        LinkModel

	detectTimeout Duration
	backups       int
	haveBackups   bool
	failPrimaryAt Duration
	failBackupAt  map[int]Duration // 1-based backup index -> time

	diskRead, diskWrite Duration
	diskBackend         DiskBackend
	extraDisks          []DiskSpec
	terminal            []TerminalInput

	nic        bool
	clientLoad *ClientLoad

	sharedImage  bool
	outputCommit *OutputCommit
}

// buildOptions applies opts over the defaults and cross-validates.
func buildOptions(opts []Option) (*clusterOptions, error) {
	o := &clusterOptions{
		seed:        1,
		epochLength: 4096,
		link:        Ethernet10(),
		backups:     1,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("hft: nil Option")
		}
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	if !o.haveWork && o.program == nil {
		return nil, errors.New("hft: no guest workload (use WithWorkload or WithProgram)")
	}
	if o.haveWork && o.program != nil {
		return nil, errors.New("hft: WithWorkload and WithProgram are mutually exclusive")
	}
	for i := range o.failBackupAt {
		if i > o.backups {
			return nil, fmt.Errorf("hft: WithFailBackupAt(%d, ...) exceeds the replica set (%d backups)", i, o.backups)
		}
	}
	if o.clientLoad != nil && (!o.haveWork || o.workload.Kind != guest.WorkloadServe) {
		return nil, errors.New("hft: WithClientLoad requires the ServeRequests workload (the request count is derived from it)")
	}
	// Workload/device cross-validation, eagerly: a workload that drives
	// a device the platform does not carry would wedge mid-run instead.
	if o.haveWork {
		switch o.workload.Kind {
		case guest.WorkloadCopy:
			if len(o.extraDisks) == 0 {
				return nil, errors.New("hft: TwoDiskCopy needs a second disk (add WithDisk)")
			}
		case guest.WorkloadTermEcho:
			if len(o.terminal) == 0 {
				return nil, errors.New("hft: TerminalEcho needs scripted terminal input (add WithTerminal)")
			}
		case guest.WorkloadServe:
			if o.clientLoad == nil {
				return nil, errors.New("hft: ServeRequests needs a client population (add WithClientLoad) or the guest never halts")
			}
			if o.workload.Ops == 0 {
				return nil, errors.New("hft: ServeRequests with zero requests")
			}
		}
		if o.workload.Kind == guest.WorkloadTermEcho {
			// The TEMPORALLY last input must end with EOT (events are
			// delivered by At, not by option order).
			last := o.terminal[0]
			for _, ev := range o.terminal[1:] {
				if ev.At >= last.At {
					last = ev
				}
			}
			if len(last.Data) == 0 || last.Data[len(last.Data)-1] != TerminalEOT {
				return nil, errors.New("hft: TerminalEcho input script must end with TerminalEOT or the guest never halts")
			}
		}
	}
	return o, nil
}

// WithWorkload selects one of the built-in guest benchmarks
// (CPUIntensive, DiskWrite, DiskRead). Exactly one of WithWorkload or
// WithProgram is required.
func WithWorkload(w Workload) Option {
	return func(o *clusterOptions) error {
		if w.Kind == 0 {
			return errors.New("hft: zero workload")
		}
		o.workload, o.haveWork = w, true
		return nil
	}
}

// WithProgram plugs in a user-supplied guest program in place of the
// built-in benchmarks.
func WithProgram(p Program) Option {
	return func(o *clusterOptions) error {
		if p == nil {
			return errors.New("hft: nil Program")
		}
		o.program = p
		return nil
	}
}

// WithEpochLength sets the instructions per epoch (default 4096, the
// paper's reference point; HP-UX bounds it at 385,000).
func WithEpochLength(n uint64) Option {
	return func(o *clusterOptions) error {
		if n == 0 {
			return errors.New("hft: zero epoch length")
		}
		if n > 385000 {
			return errors.New("hft: epoch length exceeds the HP-UX clock-maintenance bound (385,000)")
		}
		o.epochLength = n
		return nil
	}
}

// WithProtocol selects the coordination variant (default ProtocolOld).
func WithProtocol(p Protocol) Option {
	return func(o *clusterOptions) error {
		if p != ProtocolOld && p != ProtocolNew {
			return fmt.Errorf("hft: unknown protocol %d", p)
		}
		o.protocol = p
		return nil
	}
}

// WithLink plugs in the hypervisor-to-hypervisor channel model
// (default Ethernet10).
func WithLink(m LinkModel) Option {
	return func(o *clusterOptions) error {
		if m == nil {
			return errors.New("hft: nil LinkModel")
		}
		p := m.LinkParams()
		if p.BitsPerSecond <= 0 {
			return fmt.Errorf("hft: link %q has non-positive bandwidth %d", p.Name, p.BitsPerSecond)
		}
		if p.Latency < 0 || p.SetupTime < 0 || p.MTU < 0 {
			return fmt.Errorf("hft: link %q has negative parameters", p.Name)
		}
		o.link = m
		return nil
	}
}

// WithSeed sets the simulation seed. Zero is rejected — in the legacy
// Config API a zero seed silently meant "default (1)", and accepting it
// here would make two differently-written configurations identical.
func WithSeed(seed int64) Option {
	return func(o *clusterOptions) error {
		if seed == 0 {
			return errors.New("hft: zero seed (the default seed is 1; pass it explicitly)")
		}
		o.seed = seed
		return nil
	}
}

// WithBackups sets t, the number of backup replicas (default 1): the
// virtual machine tolerates t failstops.
func WithBackups(t int) Option {
	return func(o *clusterOptions) error {
		if t < 1 {
			return fmt.Errorf("hft: backups must be >= 1 (got %d)", t)
		}
		o.backups, o.haveBackups = t, true
		return nil
	}
}

// WithDetectTimeout sets the backup's failure-detection timeout
// (default 50 ms simulated; backup i waits i × timeout so promotions
// cascade in priority order).
func WithDetectTimeout(d Duration) Option {
	return func(o *clusterOptions) error {
		if d <= 0 {
			return fmt.Errorf("hft: non-positive detect timeout %v", sim.Time(d))
		}
		o.detectTimeout = d
		return nil
	}
}

// WithFailPrimaryAt schedules a primary failstop at virtual time t
// (the scheduled counterpart of Cluster.FailPrimary).
func WithFailPrimaryAt(t Duration) Option {
	return func(o *clusterOptions) error {
		if t <= 0 {
			return fmt.Errorf("hft: non-positive failure time %v", sim.Time(t))
		}
		o.failPrimaryAt = t
		return nil
	}
}

// WithFailBackupAt schedules a failstop of backup i (1-based priority
// index) at virtual time t. The index is checked against the replica
// set when NewCluster assembles the configuration.
func WithFailBackupAt(i int, t Duration) Option {
	return func(o *clusterOptions) error {
		if i < 1 {
			return fmt.Errorf("hft: backup index %d (backups are numbered from 1)", i)
		}
		if t <= 0 {
			return fmt.Errorf("hft: non-positive failure time %v", sim.Time(t))
		}
		if o.failBackupAt == nil {
			o.failBackupAt = map[int]Duration{}
		}
		o.failBackupAt[i] = t
		return nil
	}
}

// WithDiskLatency overrides the shared disk's service times (defaults:
// the paper's 24.2 ms reads / 26 ms writes).
func WithDiskLatency(read, write Duration) Option {
	return func(o *clusterOptions) error {
		if read < 0 || write < 0 {
			return errors.New("hft: negative disk latency")
		}
		o.diskRead, o.diskWrite = read, write
		return nil
	}
}

// WithDiskBackend plugs in the storage behind shared disk 0's blocks
// (default: in-memory, lazily allocated, zero-filled).
func WithDiskBackend(b DiskBackend) Option {
	return func(o *clusterOptions) error {
		if b == nil {
			return errors.New("hft: nil DiskBackend")
		}
		o.diskBackend = b
		return nil
	}
}

// DiskSpec describes one additional shared disk for WithDisk. Zero
// latencies take the paper's defaults (24.2 ms reads / 26 ms writes);
// a nil Backend means in-memory, lazily allocated, zero-filled.
type DiskSpec struct {
	// ReadLatency is the device service time for a block read.
	ReadLatency Duration
	// WriteLatency is the device service time for a block write.
	WriteLatency Duration
	// Backend optionally plugs in the storage behind the blocks.
	Backend DiskBackend
}

// WithDisk adds one more shared disk to the cluster — repeatable, each
// call appends a disk. Disk 0 is the boot disk every configuration
// carries (WithDiskLatency/WithDiskBackend configure it); WithDisk
// disks become disks 1, 2, ... on the platform's device table, visible
// to the guest at consecutive MMIO windows and dual-ported to every
// replica exactly like disk 0 (the I/O Device Accessibility
// Assumption). The built-in TwoDiskCopy workload drives disks 0 and 1.
func WithDisk(spec DiskSpec) Option {
	return func(o *clusterOptions) error {
		if spec.ReadLatency < 0 || spec.WriteLatency < 0 {
			return errors.New("hft: negative disk latency")
		}
		o.extraDisks = append(o.extraDisks, spec)
		return nil
	}
}

// TerminalInput is one scripted keystroke burst: Data arrives at the
// console at virtual time At.
type TerminalInput struct {
	At   Duration
	Data string
}

// TerminalEOT is the end-of-transmission byte that terminates the
// TerminalEcho workload's input stream.
const TerminalEOT = guest.TermEOT

// WithTerminal scripts environment input arriving at the console —
// repeatable; events accumulate. Input is delivered to the guest the
// way §2 of the paper delivers every interrupt: the I/O-active
// hypervisor captures the arriving bytes, forwards them in the epoch
// stream, and every replica makes them guest-visible at the same epoch
// boundary. Transcripts (echoed output) of replicated runs equal bare
// runs byte for byte, including across failovers and reintegrations.
func WithTerminal(script ...TerminalInput) Option {
	return func(o *clusterOptions) error {
		if len(script) == 0 {
			return errors.New("hft: empty terminal script")
		}
		for _, ev := range script {
			if ev.At <= 0 {
				return fmt.Errorf("hft: non-positive terminal input time %v", sim.Time(ev.At))
			}
			if len(ev.Data) == 0 {
				return errors.New("hft: empty terminal input data")
			}
		}
		o.terminal = append(o.terminal, script...)
		return nil
	}
}

// ClientLoad parameterizes the simulated client population WithClientLoad
// attaches: many logical connections multiplexed over one access link
// into the cluster's NIC. Zero fields take defaults. The number of
// requests is NOT a field — it is derived from the ServeRequests
// workload's request count, so the population and the guest always
// agree on when the service is done.
type ClientLoad struct {
	// Clients is the number of concurrent logical connections the
	// requests are spread over, round-robin (default 64).
	Clients int
	// PayloadWords is the number of payload words per request frame
	// (default 4).
	PayloadWords int
	// Start is the virtual time of the first request arrival (default
	// 200 µs, past guest boot).
	Start Duration
	// MeanGap is the open-loop mean inter-arrival gap (default 50 µs).
	// Arrivals follow a seeded schedule independent of reply timing: a
	// failing-over server faces undiminished offered load.
	MeanGap Duration
	// Timeout is the client retransmission timeout (default 2 ms). A
	// client that misses its reply retransmits the same request; the
	// NIC's receiver-side dedup keeps duplicates out of the guest.
	Timeout Duration
}

// WithNIC attaches the shared network adapter to every node without
// client load — for custom Programs that drive the NIC themselves.
// Implied by WithClientLoad.
func WithNIC() Option {
	return func(o *clusterOptions) error {
		o.nic = true
		return nil
	}
}

// OutputCommit parameterizes WithOutputCommit. The zero value asks for
// the engine with a window of one epoch and fixed boundaries.
type OutputCommit struct {
	// Window is the maximum number of epochs the coordinator runs ahead
	// of acknowledgment (default 1 — classic output commit; each
	// epoch's deferred output is released when its frame is acked).
	// Bounded at 64.
	Window int
	// Adaptive enables output-triggered epoch boundaries: environment
	// output mid-epoch deterministically terminates the epoch shortly
	// after the triggering instruction, so output waits on the short
	// remainder of a cut-short epoch instead of a full one.
	Adaptive bool
}

// WithOutputCommit replaces the lock-step boundary protocol on the
// replication critical path with the output-commit latency engine:
// environment output is deferred, not gated — the epoch's state message
// travels to the backups while the guest keeps executing, and the
// deferred output is released the moment the message is acknowledged.
// Failover semantics are unchanged (exactly-once output holds across
// promotion); only the latency of the path from an output instruction
// to the wire shrinks. Off by default; without this option the protocol
// behaves — byte for byte — as it always has.
func WithOutputCommit(oc OutputCommit) Option {
	return func(o *clusterOptions) error {
		if oc.Window < 0 {
			return fmt.Errorf("hft: negative output-commit window %d", oc.Window)
		}
		if oc.Window > 64 {
			return fmt.Errorf("hft: output-commit window %d exceeds the bound (64)", oc.Window)
		}
		if oc.Window == 0 {
			oc.Window = 1
		}
		o.outputCommit = &oc
		return nil
	}
}

// WithSharedImage backs every replica's guest RAM with a
// content-interned, copy-on-write base image built from the guest boot
// image. All machines in the cluster — and across every cluster that
// boots the same program at the same RAM size, fleet-wide — map the
// same immutable frames; a replica privatizes a page only on its first
// differing store. Timing, results and memory digests are unchanged:
// sharing is a memory-footprint optimization for running thousands of
// clusters in one process (see internal/fleet).
func WithSharedImage() Option {
	return func(o *clusterOptions) error {
		o.sharedImage = true
		return nil
	}
}

// WithClientLoad drives a simulated client population into the
// cluster's network service — the measurement half of the ServeRequests
// workload. Requests arrive open-loop on their own simulated access
// link, are served by the guest through the NIC, and replies are
// timestamped at the client, so ServiceLatencies and ServiceBlackout
// report what the service's USERS observe — including the failover
// blackout, which retransmissions ride out but never hide. Requires
// WithWorkload(ServeRequests(...)).
func WithClientLoad(cl ClientLoad) Option {
	return func(o *clusterOptions) error {
		if cl.Clients < 0 || cl.PayloadWords < 0 {
			return errors.New("hft: negative client-load population parameters")
		}
		if cl.Start < 0 || cl.MeanGap < 0 || cl.Timeout < 0 {
			return errors.New("hft: negative client-load durations")
		}
		o.clientLoad = &cl
		o.nic = true
		return nil
	}
}

// WithConfig seeds the options from a legacy one-shot Config plus
// workload — the bridge the back-compat wrappers use. The Config is
// validated with the same rules NewCluster applies.
func WithConfig(cfg Config, w Workload) Option {
	return func(o *clusterOptions) error {
		cfg = cfg.withDefaults()
		if err := cfg.validate(); err != nil {
			return err
		}
		lm, err := cfg.linkModel()
		if err != nil {
			return err
		}
		o.seed = cfg.Seed
		o.workload, o.haveWork = w, true
		o.epochLength = cfg.EpochLength
		o.protocol = cfg.Protocol
		o.link = lm
		o.detectTimeout = cfg.DetectTimeout
		o.failPrimaryAt = cfg.FailPrimaryAt
		o.diskRead, o.diskWrite = cfg.DiskReadLatency, cfg.DiskWriteLatency
		o.backups = cfg.Backups
		if o.backups == 0 {
			o.backups = 1
		}
		o.failBackupAt = nil
		for i, at := range cfg.FailBackupAt {
			if at > 0 {
				if o.failBackupAt == nil {
					o.failBackupAt = map[int]Duration{}
				}
				o.failBackupAt[i+1] = at
			}
		}
		o.nic, o.clientLoad = false, nil
		if cfg.ClientLoad != nil {
			return WithClientLoad(*cfg.ClientLoad)(o)
		}
		return nil
	}
}

// withBare switches the session to the single-machine baseline (used
// by RunBare; not part of the public surface — a bare session has no
// cluster semantics).
func withBare() Option {
	return func(o *clusterOptions) error {
		o.bare = true
		return nil
	}
}

// diskConfig materializes disk 0's device configuration.
func (o *clusterOptions) diskConfig() scsi.DiskConfig {
	cfg := scsi.DiskConfig{
		ReadLatency:  sim.Time(o.diskRead),
		WriteLatency: sim.Time(o.diskWrite),
	}
	if o.diskBackend != nil {
		cfg.Backend = scsiBackend(o.diskBackend)
	}
	return cfg
}

// extraDiskConfigs materializes the WithDisk disks.
func (o *clusterOptions) extraDiskConfigs() []scsi.DiskConfig {
	var out []scsi.DiskConfig
	for _, spec := range o.extraDisks {
		cfg := scsi.DiskConfig{
			ReadLatency:  sim.Time(spec.ReadLatency),
			WriteLatency: sim.Time(spec.WriteLatency),
		}
		if spec.Backend != nil {
			cfg.Backend = scsiBackend(spec.Backend)
		}
		out = append(out, cfg)
	}
	return out
}

// terminalScript materializes the scripted console input.
func (o *clusterOptions) terminalScript() []console.Input {
	var out []console.Input
	for _, ev := range o.terminal {
		out = append(out, console.Input{At: sim.Time(ev.At), Data: []byte(ev.Data)})
	}
	return out
}

// clientLoadConfig materializes the client population configuration
// (request count derived from the serve workload).
func (o *clusterOptions) clientLoadConfig() *clientsim.Config {
	if o.clientLoad == nil {
		return nil
	}
	cl := o.clientLoad
	return &clientsim.Config{
		Clients:      cl.Clients,
		Requests:     int(o.workload.Ops),
		PayloadWords: cl.PayloadWords,
		Start:        sim.Time(cl.Start),
		MeanGap:      sim.Time(cl.MeanGap),
		Timeout:      sim.Time(cl.Timeout),
	}
}

// outputCommitConfig materializes the output-commit engine
// configuration (zero value: off).
func (o *clusterOptions) outputCommitConfig() replication.OutputCommit {
	if o.outputCommit == nil {
		return replication.OutputCommit{}
	}
	return replication.OutputCommit{
		Enabled:  true,
		Window:   o.outputCommit.Window,
		Adaptive: o.outputCommit.Adaptive,
	}
}

// failBackupTimes flattens the failure schedule to the engine's
// index-ordered slice representation.
func (o *clusterOptions) failBackupTimes() []sim.Time {
	if len(o.failBackupAt) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(o.failBackupAt))
	for i := range o.failBackupAt {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]sim.Time, idxs[len(idxs)-1])
	for _, i := range idxs {
		out[i-1] = sim.Time(o.failBackupAt[i])
	}
	return out
}
