package hft

// Session checkpointing. A Cluster's whole future is a deterministic
// function of three things: its (validated, serializable)
// configuration, the ordered log of live perturbations applied to it
// (failstops, link-quality changes, backup reintegrations — each tagged
// with the exact pause position it was applied at), and how far it has
// been advanced. Save serializes exactly that, PLUS a complete labeled
// capture of the simulation state (every node's machine image with RAM,
// registers, TLB and recovery counter; every engine's replication
// state with its archive tail, sequence watermarks and pending
// buffers; environment digests).
//
// Restore rebuilds the session from the configuration, replays the
// journal — re-applying each perturbation at its recorded pause
// position, which reproduces the original kernel state exactly (the
// sliced-session differential suite pins that pausing is
// perturbation-free) — advances to the saved position, and then
// VERIFIES the reconstructed state against the embedded capture
// section by section. A snapshot from a different format version is
// rejected up front (ErrSnapshotVersion); a verified restore is
// bit-identical to the original run by construction, and the
// round-trip differential tests in snapshot_test.go pin it.
//
// This is the simulation-level mirror of the paper's own mechanism:
// the backup reconstructs the primary's state not by copying arbitrary
// mid-flight internals but by replaying the same deterministic inputs
// from a known point — here applied to the entire cluster.

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// saveMagic opens a session checkpoint blob.
const saveMagic = "HFTSAVE1"

// ErrSnapshotVersion reports a snapshot written by a different format
// version of this package (test with errors.Is).
var ErrSnapshotVersion = snapshot.ErrVersion

// ErrSnapshotCorrupt reports a snapshot that fails structural
// validation: bad magic, checksum mismatch, or truncation.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// pauseKind distinguishes the replayable pause coordinates.
type pauseKind uint8

const (
	// pauseAtTime: the session was paused at an exact virtual time
	// (RunFor's bound).
	pauseAtTime pauseKind = iota
	// pauseAtCommit: the session was paused at a cumulative
	// epoch-commit ordinal (RunUntil / cancelled Wait).
	pauseAtCommit
	// pauseAtDone: the session ran to completion.
	pauseAtDone
)

// pausePoint is one replayable pause position.
type pausePoint struct {
	kind    pauseKind
	time    Duration
	commits uint64
}

// actionKind enumerates journalled live perturbations.
type actionKind uint8

const (
	actFailPrimary actionKind = iota
	actFailBackup
	actSetLink
	actAddBackup
)

// journalEntry is one live perturbation and the pause it was applied at.
type journalEntry struct {
	pause   pausePoint
	action  actionKind
	backup  int         // actFailBackup
	quality LinkQuality // actSetLink
	link    LinkParams  // actAddBackup
}

// Save serializes the session to w: configuration, perturbation
// journal, current position, and a complete verified-on-restore state
// capture. The session itself is unaffected (capturing is read-only)
// and remains usable.
//
// Save requires a serializable configuration: sessions using a custom
// Program or DiskBackend cannot be checkpointed (an interface
// implementation cannot travel through a file); any LinkModel is fine —
// its resolved LinkParams are the complete channel behavior.
func (c *Cluster) Save(w io.Writer) error {
	if c.closed {
		return ErrClosed
	}
	if c.opts.program != nil {
		return errors.New("hft: Save: sessions with a custom Program are not serializable")
	}
	if c.opts.diskBackend != nil {
		return errors.New("hft: Save: sessions with a custom DiskBackend are not serializable")
	}
	for i, spec := range c.opts.extraDisks {
		if spec.Backend != nil {
			return fmt.Errorf("hft: Save: disk %d has a custom DiskBackend; not serializable", i+1)
		}
	}
	if c.opts.bare {
		return errors.New("hft: Save: bare baseline sessions are not checkpointable")
	}

	sw := snapshot.NewWriter(saveMagic)
	c.putConfig(sw)
	sw.U32(uint32(len(c.journal)))
	for _, e := range c.journal {
		putPause(sw, e.pause)
		sw.U8(uint8(e.action))
		sw.Int(e.backup)
		sw.I64(e.quality.BitsPerSecond)
		sw.I64(int64(e.quality.Latency))
		sw.Int(e.quality.MTU)
		sw.Int(e.quality.DropNext)
		putLinkParams(sw, e.link)
	}
	putPause(sw, c.pause)

	sections := c.eng.CaptureSections()
	sw.U32(uint32(len(sections)))
	for _, s := range sections {
		sw.String(s.Name)
		sw.Bytes(s.Data)
	}

	_, err := w.Write(sw.Finish())
	return err
}

// putConfig serializes the resolved cluster options.
func (c *Cluster) putConfig(w *snapshot.Writer) {
	o := c.opts
	w.I64(o.seed)
	wl := o.workload
	w.U32(wl.Kind)
	w.U32(wl.Iters)
	w.U32(wl.Ops)
	w.U32(wl.Seed)
	w.U32(wl.BlockMask)
	w.U32(wl.BlockBase)
	w.U32(wl.Count)
	w.U32(wl.PreOp)
	w.U32(wl.PrivOps)
	w.U64(o.epochLength)
	w.U8(uint8(o.protocol))
	putLinkParams(w, o.link.LinkParams())
	w.I64(int64(o.detectTimeout))
	w.Int(o.backups)
	w.I64(int64(o.failPrimaryAt))
	idxs := make([]int, 0, len(o.failBackupAt))
	for i := range o.failBackupAt {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	w.U32(uint32(len(idxs)))
	for _, i := range idxs {
		w.Int(i)
		w.I64(int64(o.failBackupAt[i]))
	}
	w.I64(int64(o.diskRead))
	w.I64(int64(o.diskWrite))
	w.U32(uint32(len(o.extraDisks)))
	for _, spec := range o.extraDisks {
		w.I64(int64(spec.ReadLatency))
		w.I64(int64(spec.WriteLatency))
	}
	w.U32(uint32(len(o.terminal)))
	for _, ev := range o.terminal {
		w.I64(int64(ev.At))
		w.String(ev.Data)
	}
	w.Bool(o.nic)
	w.Bool(o.clientLoad != nil)
	if o.clientLoad != nil {
		cl := o.clientLoad
		w.Int(cl.Clients)
		w.Int(cl.PayloadWords)
		w.I64(int64(cl.Start))
		w.I64(int64(cl.MeanGap))
		w.I64(int64(cl.Timeout))
	}
	w.Bool(o.sharedImage)
	w.Bool(o.outputCommit != nil)
	if o.outputCommit != nil {
		w.Int(o.outputCommit.Window)
		w.Bool(o.outputCommit.Adaptive)
	}
}

// configFrom rebuilds resolved cluster options from a snapshot.
func configFrom(r *snapshot.Reader) *clusterOptions {
	o := &clusterOptions{}
	o.seed = r.I64()
	o.workload.Kind = r.U32()
	o.workload.Iters = r.U32()
	o.workload.Ops = r.U32()
	o.workload.Seed = r.U32()
	o.workload.BlockMask = r.U32()
	o.workload.BlockBase = r.U32()
	o.workload.Count = r.U32()
	o.workload.PreOp = r.U32()
	o.workload.PrivOps = r.U32()
	o.haveWork = true
	o.epochLength = r.U64()
	o.protocol = Protocol(r.U8())
	o.link = linkParams(r)
	o.detectTimeout = Duration(r.I64())
	o.backups = r.Int()
	o.failPrimaryAt = Duration(r.I64())
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		if o.failBackupAt == nil {
			o.failBackupAt = map[int]Duration{}
		}
		idx := r.Int()
		o.failBackupAt[idx] = Duration(r.I64())
	}
	o.diskRead = Duration(r.I64())
	o.diskWrite = Duration(r.I64())
	n = int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		var spec DiskSpec
		spec.ReadLatency = Duration(r.I64())
		spec.WriteLatency = Duration(r.I64())
		o.extraDisks = append(o.extraDisks, spec)
	}
	n = int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		var ev TerminalInput
		ev.At = Duration(r.I64())
		ev.Data = r.String()
		o.terminal = append(o.terminal, ev)
	}
	o.nic = r.Bool()
	if r.Bool() {
		var cl ClientLoad
		cl.Clients = r.Int()
		cl.PayloadWords = r.Int()
		cl.Start = Duration(r.I64())
		cl.MeanGap = Duration(r.I64())
		cl.Timeout = Duration(r.I64())
		o.clientLoad = &cl
	}
	o.sharedImage = r.Bool()
	if r.Bool() {
		var oc OutputCommit
		oc.Window = r.Int()
		oc.Adaptive = r.Bool()
		o.outputCommit = &oc
	}
	return o
}

func putLinkParams(w *snapshot.Writer, p LinkParams) {
	w.String(p.Name)
	w.I64(p.BitsPerSecond)
	w.I64(int64(p.Latency))
	w.Int(p.MTU)
	w.Int(p.FrameOverhead)
	w.Int(p.PerMessageFrames)
	w.I64(int64(p.SetupTime))
}

func linkParams(r *snapshot.Reader) LinkParams {
	return LinkParams{
		Name:             r.String(),
		BitsPerSecond:    r.I64(),
		Latency:          Duration(r.I64()),
		MTU:              r.Int(),
		FrameOverhead:    r.Int(),
		PerMessageFrames: r.Int(),
		SetupTime:        Duration(r.I64()),
	}
}

func putPause(w *snapshot.Writer, p pausePoint) {
	w.U8(uint8(p.kind))
	w.I64(int64(p.time))
	w.U64(p.commits)
}

func pause(r *snapshot.Reader) pausePoint {
	return pausePoint{
		kind:    pauseKind(r.U8()),
		time:    Duration(r.I64()),
		commits: r.U64(),
	}
}

// RestoreOption configures Restore.
type RestoreOption func(*restoreOptions) error

type restoreOptions struct {
	verify bool
}

// RestoreWithoutVerify skips the post-replay state verification. The
// replayed session is still deterministic; skipping only removes the
// byte-for-byte comparison against the snapshot's embedded capture
// (useful when restoring snapshots at scale and the capture has been
// verified once).
func RestoreWithoutVerify() RestoreOption {
	return func(o *restoreOptions) error {
		o.verify = false
		return nil
	}
}

// Restore reads a checkpoint written by Save and reconstructs the
// session: the configuration is rebuilt, the perturbation journal is
// replayed with each action re-applied at its recorded pause position,
// and the session is advanced to the saved position. By the
// determinism contract the result is bit-identical to the original —
// and unless RestoreWithoutVerify is given, Restore proves it by
// comparing a fresh state capture against the snapshot's embedded one,
// section by section, failing loudly on any divergence.
//
// Snapshots from a different format version are rejected with an error
// wrapping ErrSnapshotVersion; structurally invalid data with one
// wrapping ErrSnapshotCorrupt. The returned cluster is live: it can be
// advanced, perturbed, observed and saved again.
func Restore(r io.Reader, opts ...RestoreOption) (*Cluster, error) {
	ro := restoreOptions{verify: true}
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("hft: nil RestoreOption")
		}
		if err := opt(&ro); err != nil {
			return nil, err
		}
	}
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("hft: Restore: %w", err)
	}
	sr, err := snapshot.NewReader(blob, saveMagic)
	if err != nil {
		return nil, fmt.Errorf("hft: Restore: %w", err)
	}

	o := configFrom(sr)
	nj := int(sr.U32())
	var journal []journalEntry
	for i := 0; i < nj && sr.Err() == nil; i++ {
		var e journalEntry
		e.pause = pause(sr)
		e.action = actionKind(sr.U8())
		e.backup = sr.Int()
		e.quality.BitsPerSecond = sr.I64()
		e.quality.Latency = Duration(sr.I64())
		e.quality.MTU = sr.Int()
		e.quality.DropNext = sr.Int()
		e.link = linkParams(sr)
		journal = append(journal, e)
	}
	final := pause(sr)
	ns := int(sr.U32())
	var want []session.Section
	for i := 0; i < ns && sr.Err() == nil; i++ {
		want = append(want, session.Section{Name: sr.String(), Data: sr.Bytes()})
	}
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("hft: Restore: %w", err)
	}

	c := newCluster(o)
	c.journal = journal
	for i, e := range journal {
		if err := c.replayTo(e.pause); err != nil {
			c.Close()
			return nil, fmt.Errorf("hft: Restore: replaying journal entry %d: %w", i, err)
		}
		if err := c.replayAction(e); err != nil {
			c.Close()
			return nil, fmt.Errorf("hft: Restore: replaying journal entry %d: %w", i, err)
		}
	}
	if err := c.replayTo(final); err != nil {
		c.Close()
		return nil, fmt.Errorf("hft: Restore: %w", err)
	}
	c.pause = final

	if ro.verify {
		got := c.eng.CaptureSections()
		if err := session.CompareSections(want, got); err != nil {
			c.Close()
			return nil, fmt.Errorf("hft: Restore: replayed state diverges from snapshot: %w", err)
		}
	}
	return c, nil
}

// replayTo advances the restored session to a recorded pause position.
func (c *Cluster) replayTo(p pausePoint) error {
	switch p.kind {
	case pauseAtTime:
		return c.eng.RunFor(sim.Time(p.time) - c.eng.Now())
	case pauseAtCommit:
		return c.eng.RunUntilCommits(p.commits)
	case pauseAtDone:
		return c.eng.RunToCompletion(nil)
	}
	return fmt.Errorf("%w: unknown pause kind %d", ErrSnapshotCorrupt, p.kind)
}

// replayAction re-applies one journalled perturbation (without
// re-journaling — the entry is already in c.journal).
func (c *Cluster) replayAction(e journalEntry) error {
	switch e.action {
	case actFailPrimary:
		c.eng.FailPrimary()
		return nil
	case actFailBackup:
		return c.eng.FailBackup(e.backup)
	case actSetLink:
		return c.eng.SetLinkQuality(e.quality.quality())
	case actAddBackup:
		_, err := c.eng.AddBackup(session.AddBackupConfig{Link: e.link.linkConfig()})
		return err
	}
	return fmt.Errorf("%w: unknown journal action %d", ErrSnapshotCorrupt, e.action)
}
