// Command hftbench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated prototype.
//
// Usage:
//
//	hftbench [-table1] [-fig2] [-fig3] [-fig4] [-ablation] [-all]
//	         [-service] [-latency] [-fleet N] [-fleet-seed S]
//	         [-cow on|off] [-scale quick|paper] [-parallel N] [-json]
//	         [-cpuprofile file] [-memprofile file]
//
// Each experiment prints the simulator's measured normalized
// performance beside the paper's published values. Absolute agreement
// is not the goal (the substrate is a calibrated simulator, not two HP
// 9000/720s); the shape — who wins, by what factor, where the curves
// bend — is.
//
// -parallel N fans the independent simulations of each experiment
// across N worker goroutines (0 = all CPUs). Every simulation is
// self-contained and deterministic, so the output is identical at any
// parallelism. -json emits the results as machine-readable JSON
// (normalized performance per figure point) for trajectory tracking.
//
// -service runs the replicated-network-service experiment (beyond the
// paper's evaluation): the guest request/response server under
// open-loop client load, bare and replicated under both protocols on
// both links with the primary failstopped mid-load, reporting
// client-observed latency quantiles and the failover blackout window.
// It is not part of -all, so the -all output stays byte-identical to
// the pinned golden (testdata/hftbench_quick.golden.json).
//
// -latency sweeps the output-commit latency/overhead frontier: the
// same replicated service, healthy (no failure injected), at every
// epoch-length x commit-window grid point, reporting client-observed
// p50/p99, median commit latency and overhead versus bare. Pinned to
// BENCH_latency.json; also not part of -all, for the same reason.
//
// -fleet N stands up N replicated clusters at once — each with its own
// seed, workload, link model and randomized fault schedule — on shared
// copy-on-write guest images and the work-stealing scheduler, and
// reports fleet aggregates: epoch-commit throughput, failover blackout
// percentiles, total guest instructions per second, and allocation per
// shard. The spec and aggregate lines are deterministic and pinned to
// BENCH_fleet.json; the wall-clock lines measure the host. See
// docs/FLEET.md.
//
// -cow on backs every experiment's guest RAM with the shared
// content-interned base image (the fleet default); results are
// bit-identical either way — CI proves it by comparing -all output.
//
// -cpuprofile / -memprofile write pprof profiles of the run (use
// -parallel 1 for a profile of the serial critical path). Inspect with
// `go tool pprof <file>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/session"
)

// jsonPoint is a FigurePoint with NaN ("not measured") encoded as null.
type jsonPoint struct {
	EL        float64  `json:"el"`
	Predicted float64  `json:"predicted"`
	Measured  *float64 `json:"measured"`
}

func toJSONPoints(pts []harness.FigurePoint) []jsonPoint {
	out := make([]jsonPoint, len(pts))
	for i, p := range pts {
		out[i] = jsonPoint{EL: p.EL, Predicted: p.Predicted}
		if !math.IsNaN(p.Measured) {
			m := p.Measured
			out[i].Measured = &m
		}
	}
	return out
}

// jsonOutput is the -json document: one object per requested experiment.
type jsonOutput struct {
	Scale    string                   `json:"scale"`
	Parallel int                      `json:"parallel"`
	Figure2  *jsonFigure2             `json:"figure2,omitempty"`
	Figure3  map[string][]jsonPoint   `json:"figure3,omitempty"`
	Figure4  map[string][]jsonPoint   `json:"figure4,omitempty"`
	Table1   []harness.Table1Row      `json:"table1,omitempty"`
	Ablation []harness.AblationResult `json:"ablation,omitempty"`
	Service  []harness.ServiceRow     `json:"service,omitempty"`
	Latency  []harness.LatencyRow     `json:"latency,omitempty"`
	Fleet    *jsonFleet               `json:"fleet,omitempty"`
}

// jsonFleet is the -fleet JSON block. Spec and Aggregate are
// deterministic (bit-identical at any -parallel on any host); the
// remaining fields measure this host and this run, each on its own
// output line so comparison scripts can filter them by name alongside
// "parallel".
type jsonFleet struct {
	Spec      fleet.Spec      `json:"spec"`
	Aggregate fleet.Aggregate `json:"aggregate"`
	// WallMS is the fleet's wall-clock time on this host.
	WallMS float64 `json:"wall_ms"`
	// InstrPerSec / CommitsPerSec divide the deterministic totals by
	// the wall time: guest instructions and epoch commits retired per
	// real second across the whole fleet.
	InstrPerSec   float64 `json:"instr_per_sec"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// AllocPerShardBytes is heap allocation churn per shard — the
	// COW-sharing figure of merit (a private guest RAM is 1 MiB+).
	AllocPerShardBytes uint64 `json:"alloc_per_shard_bytes"`
}

type jsonFigure2 struct {
	Points   []jsonPoint `json:"points"`
	Endpoint jsonPoint   `json:"endpoint"`
}

// runFleet drives the fleet and wraps the deterministic Report with
// this host's wall-clock and allocation measurements.
func runFleet(spec fleet.Spec) *jsonFleet {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep := fleet.Run(spec)
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	fl := &jsonFleet{
		Spec:               rep.Spec,
		Aggregate:          rep.Aggregate,
		WallMS:             float64(wall.Microseconds()) / 1e3,
		AllocPerShardBytes: (after.TotalAlloc - before.TotalAlloc) / uint64(spec.Shards),
	}
	if s := wall.Seconds(); s > 0 {
		fl.InstrPerSec = float64(rep.Aggregate.Instructions) / s
		fl.CommitsPerSec = float64(rep.Aggregate.Commits) / s
	}
	return fl
}

func printFleet(fl *jsonFleet) {
	a := fl.Aggregate
	fmt.Printf("Fleet: %d shards, seed %d\n", fl.Spec.Shards, fl.Spec.Seed)
	fmt.Printf("  commits %d  guest instructions %d  virtual time %v\n",
		a.Commits, a.Instructions, a.VirtualTime)
	fmt.Printf("  failovers %d  blackout p50 %v  p99 %v  max %v\n",
		a.Failovers, a.BlackoutP50, a.BlackoutP99, a.BlackoutMax)
	fmt.Printf("  violations %d  digest %s\n", a.Violations, a.Digest)
	fmt.Printf("  wall %.0fms  %.2gM instr/s  %.0f commits/s  %d B allocated/shard\n",
		fl.WallMS, fl.InstrPerSec/1e6, fl.CommitsPerSec, fl.AllocPerShardBytes)
}

func main() { os.Exit(run()) }

// run is main's body with a return code instead of os.Exit calls, so
// the profiling defers always flush (an os.Exit would leave a
// truncated -cpuprofile and skip -memprofile entirely).
func run() int {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table 1 (old vs new protocol)")
		fig2     = flag.Bool("fig2", false, "regenerate Figure 2 (CPU-intensive workload)")
		fig3     = flag.Bool("fig3", false, "regenerate Figure 3 (I/O workloads)")
		fig4     = flag.Bool("fig4", false, "regenerate Figure 4 (faster communication)")
		ablate   = flag.Bool("ablation", false, "run the §3.2 TLB-takeover ablation")
		service  = flag.Bool("service", false, "run the replicated-network-service experiment (client latency + failover blackout)")
		latency  = flag.Bool("latency", false, "sweep the output-commit latency/overhead frontier (epoch length x window depth)")
		fleetN   = flag.Int("fleet", 0, "stand up N replicated clusters on shared COW guest images and drive them to completion")
		fleetSd  = flag.Int64("fleet-seed", 19951203, "fleet schedule seed (shard i runs chaos schedule ScheduleAt(seed, i))")
		cowMd    = flag.String("cow", "off", "back every experiment's guest RAM with shared COW base images: on or off (results are bit-identical either way)")
		all      = flag.Bool("all", false, "regenerate everything in the paper's evaluation (does not include -service or -fleet)")
		scaleN   = flag.String("scale", "quick", "workload scale: quick or paper")
		parallel = flag.Int("parallel", 1, "concurrent simulations per experiment (0 = all CPUs)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		traceMd  = flag.String("trace", "on", "superblock trace dispatch: on or off (results are bit-identical either way)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var scale harness.Scale
	switch *scaleN {
	case "quick":
		scale = harness.QuickScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "hftbench: unknown scale %q\n", *scaleN)
		return 2
	}
	switch *traceMd {
	case "on":
	case "off":
		machine.SetTraceDispatch(false)
	default:
		fmt.Fprintf(os.Stderr, "hftbench: unknown -trace mode %q (want on or off)\n", *traceMd)
		return 2
	}
	switch *cowMd {
	case "off":
	case "on":
		session.SetSharedImageDefault(true)
	default:
		fmt.Fprintf(os.Stderr, "hftbench: unknown -cow mode %q (want on or off)\n", *cowMd)
		return 2
	}
	workers := *parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	scale.Workers = workers
	if *all {
		*table1, *fig2, *fig3, *fig4, *ablate = true, true, true, true, true
	}
	if !*table1 && !*fig2 && !*fig3 && !*fig4 && !*ablate && !*service && !*latency && *fleetN <= 0 {
		flag.Usage()
		return 2
	}

	// Flags are valid: start profiling now, so every exit path below
	// runs the defers that flush the profiles.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hftbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hftbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hftbench: -memprofile: %v\n", err)
			}
		}()
	}

	out := jsonOutput{Scale: scale.Name, Parallel: workers}

	if *fig2 {
		points, end := harness.Figure2(scale)
		if *jsonOut {
			ep := toJSONPoints([]harness.FigurePoint{end})[0]
			out.Figure2 = &jsonFigure2{Points: toJSONPoints(points), Endpoint: ep}
		} else {
			fmt.Println(harness.FormatFigure(
				"Figure 2. CPU-Intensive Workload (predicted NPC(EL) at paper parameters; measured on simulator)",
				map[string][]harness.FigurePoint{"CPU": points}, []string{"CPU"}))
			fmt.Printf("Endpoint: EL=%d (HP-UX max) predicted NP=%.2f (paper: 1.24)\n\n",
				int(end.EL), end.Predicted)
		}
	}
	if *fig3 {
		write, read := harness.Figure3(scale)
		if *jsonOut {
			out.Figure3 = map[string][]jsonPoint{
				"write": toJSONPoints(write), "read": toJSONPoints(read)}
		} else {
			fmt.Println(harness.FormatFigure(
				"Figure 3. Input/Output Workloads (NPW/NPR(EL))",
				map[string][]harness.FigurePoint{"Disk Write": write, "Disk Read": read},
				[]string{"Disk Write", "Disk Read"}))
		}
	}
	if *fig4 {
		eth, atm := harness.Figure4(scale)
		if *jsonOut {
			out.Figure4 = map[string][]jsonPoint{
				"ethernet": toJSONPoints(eth), "atm": toJSONPoints(atm)}
		} else {
			fmt.Println(harness.FormatFigure(
				"Figure 4. Faster Communication (10 Mbps Ethernet vs 155 Mbps ATM)",
				map[string][]harness.FigurePoint{"Ethernet": eth, "ATM": atm},
				[]string{"Ethernet", "ATM"}))
		}
	}
	if *table1 {
		rows := harness.Table1(scale)
		if *jsonOut {
			out.Table1 = rows
		} else {
			fmt.Println(harness.FormatTable1(rows))
		}
	}
	if *ablate {
		rows := harness.TLBAblationWorkers(workers)
		if *jsonOut {
			out.Ablation = rows
		} else {
			fmt.Println(harness.FormatAblation(rows))
		}
	}
	if *service {
		rows := harness.Service(scale)
		if *jsonOut {
			out.Service = rows
		} else {
			fmt.Println(harness.FormatService(rows))
		}
	}
	if *latency {
		rows := harness.Latency(scale)
		if *jsonOut {
			out.Latency = rows
		} else {
			fmt.Println(harness.FormatLatency(rows))
		}
	}
	if *fleetN > 0 {
		fl := runFleet(fleet.Spec{Shards: *fleetN, Seed: *fleetSd, Workers: workers})
		if *jsonOut {
			out.Fleet = fl
		} else {
			printFleet(fl)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "hftbench: %v\n", err)
			return 1
		}
	}
	return 0
}
