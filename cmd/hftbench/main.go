// Command hftbench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated prototype.
//
// Usage:
//
//	hftbench [-table1] [-fig2] [-fig3] [-fig4] [-ablation] [-all]
//	         [-service] [-scale quick|paper] [-parallel N] [-json]
//	         [-cpuprofile file] [-memprofile file]
//
// Each experiment prints the simulator's measured normalized
// performance beside the paper's published values. Absolute agreement
// is not the goal (the substrate is a calibrated simulator, not two HP
// 9000/720s); the shape — who wins, by what factor, where the curves
// bend — is.
//
// -parallel N fans the independent simulations of each experiment
// across N worker goroutines (0 = all CPUs). Every simulation is
// self-contained and deterministic, so the output is identical at any
// parallelism. -json emits the results as machine-readable JSON
// (normalized performance per figure point) for trajectory tracking.
//
// -service runs the replicated-network-service experiment (beyond the
// paper's evaluation): the guest request/response server under
// open-loop client load, bare and replicated under both protocols on
// both links with the primary failstopped mid-load, reporting
// client-observed latency quantiles and the failover blackout window.
// It is not part of -all, so the -all output stays byte-identical to
// the pinned golden (testdata/hftbench_quick.golden.json).
//
// -cpuprofile / -memprofile write pprof profiles of the run (use
// -parallel 1 for a profile of the serial critical path). Inspect with
// `go tool pprof <file>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/harness"
	"repro/internal/machine"
)

// jsonPoint is a FigurePoint with NaN ("not measured") encoded as null.
type jsonPoint struct {
	EL        float64  `json:"el"`
	Predicted float64  `json:"predicted"`
	Measured  *float64 `json:"measured"`
}

func toJSONPoints(pts []harness.FigurePoint) []jsonPoint {
	out := make([]jsonPoint, len(pts))
	for i, p := range pts {
		out[i] = jsonPoint{EL: p.EL, Predicted: p.Predicted}
		if !math.IsNaN(p.Measured) {
			m := p.Measured
			out[i].Measured = &m
		}
	}
	return out
}

// jsonOutput is the -json document: one object per requested experiment.
type jsonOutput struct {
	Scale    string                   `json:"scale"`
	Parallel int                      `json:"parallel"`
	Figure2  *jsonFigure2             `json:"figure2,omitempty"`
	Figure3  map[string][]jsonPoint   `json:"figure3,omitempty"`
	Figure4  map[string][]jsonPoint   `json:"figure4,omitempty"`
	Table1   []harness.Table1Row      `json:"table1,omitempty"`
	Ablation []harness.AblationResult `json:"ablation,omitempty"`
	Service  []harness.ServiceRow     `json:"service,omitempty"`
}

type jsonFigure2 struct {
	Points   []jsonPoint `json:"points"`
	Endpoint jsonPoint   `json:"endpoint"`
}

func main() { os.Exit(run()) }

// run is main's body with a return code instead of os.Exit calls, so
// the profiling defers always flush (an os.Exit would leave a
// truncated -cpuprofile and skip -memprofile entirely).
func run() int {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table 1 (old vs new protocol)")
		fig2     = flag.Bool("fig2", false, "regenerate Figure 2 (CPU-intensive workload)")
		fig3     = flag.Bool("fig3", false, "regenerate Figure 3 (I/O workloads)")
		fig4     = flag.Bool("fig4", false, "regenerate Figure 4 (faster communication)")
		ablate   = flag.Bool("ablation", false, "run the §3.2 TLB-takeover ablation")
		service  = flag.Bool("service", false, "run the replicated-network-service experiment (client latency + failover blackout)")
		all      = flag.Bool("all", false, "regenerate everything in the paper's evaluation (does not include -service)")
		scaleN   = flag.String("scale", "quick", "workload scale: quick or paper")
		parallel = flag.Int("parallel", 1, "concurrent simulations per experiment (0 = all CPUs)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		traceMd  = flag.String("trace", "on", "superblock trace dispatch: on or off (results are bit-identical either way)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var scale harness.Scale
	switch *scaleN {
	case "quick":
		scale = harness.QuickScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "hftbench: unknown scale %q\n", *scaleN)
		return 2
	}
	switch *traceMd {
	case "on":
	case "off":
		machine.SetTraceDispatch(false)
	default:
		fmt.Fprintf(os.Stderr, "hftbench: unknown -trace mode %q (want on or off)\n", *traceMd)
		return 2
	}
	harness.SetWorkers(*parallel)
	if *all {
		*table1, *fig2, *fig3, *fig4, *ablate = true, true, true, true, true
	}
	if !*table1 && !*fig2 && !*fig3 && !*fig4 && !*ablate && !*service {
		flag.Usage()
		return 2
	}

	// Flags are valid: start profiling now, so every exit path below
	// runs the defers that flush the profiles.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hftbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hftbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hftbench: -memprofile: %v\n", err)
			}
		}()
	}

	out := jsonOutput{Scale: scale.Name, Parallel: harness.Workers()}

	if *fig2 {
		points, end := harness.Figure2(scale)
		if *jsonOut {
			ep := toJSONPoints([]harness.FigurePoint{end})[0]
			out.Figure2 = &jsonFigure2{Points: toJSONPoints(points), Endpoint: ep}
		} else {
			fmt.Println(harness.FormatFigure(
				"Figure 2. CPU-Intensive Workload (predicted NPC(EL) at paper parameters; measured on simulator)",
				map[string][]harness.FigurePoint{"CPU": points}, []string{"CPU"}))
			fmt.Printf("Endpoint: EL=%d (HP-UX max) predicted NP=%.2f (paper: 1.24)\n\n",
				int(end.EL), end.Predicted)
		}
	}
	if *fig3 {
		write, read := harness.Figure3(scale)
		if *jsonOut {
			out.Figure3 = map[string][]jsonPoint{
				"write": toJSONPoints(write), "read": toJSONPoints(read)}
		} else {
			fmt.Println(harness.FormatFigure(
				"Figure 3. Input/Output Workloads (NPW/NPR(EL))",
				map[string][]harness.FigurePoint{"Disk Write": write, "Disk Read": read},
				[]string{"Disk Write", "Disk Read"}))
		}
	}
	if *fig4 {
		eth, atm := harness.Figure4(scale)
		if *jsonOut {
			out.Figure4 = map[string][]jsonPoint{
				"ethernet": toJSONPoints(eth), "atm": toJSONPoints(atm)}
		} else {
			fmt.Println(harness.FormatFigure(
				"Figure 4. Faster Communication (10 Mbps Ethernet vs 155 Mbps ATM)",
				map[string][]harness.FigurePoint{"Ethernet": eth, "ATM": atm},
				[]string{"Ethernet", "ATM"}))
		}
	}
	if *table1 {
		rows := harness.Table1(scale)
		if *jsonOut {
			out.Table1 = rows
		} else {
			fmt.Println(harness.FormatTable1(rows))
		}
	}
	if *ablate {
		rows := harness.TLBAblation()
		if *jsonOut {
			out.Ablation = rows
		} else {
			fmt.Println(harness.FormatAblation(rows))
		}
	}
	if *service {
		rows := harness.Service(scale)
		if *jsonOut {
			out.Service = rows
		} else {
			fmt.Println(harness.FormatService(rows))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "hftbench: %v\n", err)
			return 1
		}
	}
	return 0
}
