// Command hftbench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated prototype.
//
// Usage:
//
//	hftbench [-table1] [-fig2] [-fig3] [-fig4] [-all] [-scale quick|paper]
//
// Each experiment prints the simulator's measured normalized
// performance beside the paper's published values. Absolute agreement
// is not the goal (the substrate is a calibrated simulator, not two HP
// 9000/720s); the shape — who wins, by what factor, where the curves
// bend — is.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "regenerate Table 1 (old vs new protocol)")
		fig2   = flag.Bool("fig2", false, "regenerate Figure 2 (CPU-intensive workload)")
		fig3   = flag.Bool("fig3", false, "regenerate Figure 3 (I/O workloads)")
		fig4   = flag.Bool("fig4", false, "regenerate Figure 4 (faster communication)")
		ablate = flag.Bool("ablation", false, "run the §3.2 TLB-takeover ablation")
		all    = flag.Bool("all", false, "regenerate everything")
		scaleN = flag.String("scale", "quick", "workload scale: quick or paper")
	)
	flag.Parse()

	var scale harness.Scale
	switch *scaleN {
	case "quick":
		scale = harness.QuickScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "hftbench: unknown scale %q\n", *scaleN)
		os.Exit(2)
	}
	if *all {
		*table1, *fig2, *fig3, *fig4, *ablate = true, true, true, true, true
	}
	if !*table1 && !*fig2 && !*fig3 && !*fig4 && !*ablate {
		flag.Usage()
		os.Exit(2)
	}

	if *fig2 {
		points, end := harness.Figure2(scale)
		fmt.Println(harness.FormatFigure(
			"Figure 2. CPU-Intensive Workload (predicted NPC(EL) at paper parameters; measured on simulator)",
			map[string][]harness.FigurePoint{"CPU": points}, []string{"CPU"}))
		fmt.Printf("Endpoint: EL=%d (HP-UX max) predicted NP=%.2f (paper: 1.24)\n\n",
			int(end.EL), end.Predicted)
	}
	if *fig3 {
		write, read := harness.Figure3(scale)
		fmt.Println(harness.FormatFigure(
			"Figure 3. Input/Output Workloads (NPW/NPR(EL))",
			map[string][]harness.FigurePoint{"Disk Write": write, "Disk Read": read},
			[]string{"Disk Write", "Disk Read"}))
	}
	if *fig4 {
		eth, atm := harness.Figure4(scale)
		fmt.Println(harness.FormatFigure(
			"Figure 4. Faster Communication (10 Mbps Ethernet vs 155 Mbps ATM)",
			map[string][]harness.FigurePoint{"Ethernet": eth, "ATM": atm},
			[]string{"Ethernet", "ATM"}))
	}
	if *table1 {
		rows := harness.Table1(scale)
		fmt.Println(harness.FormatTable1(rows))
	}
	if *ablate {
		fmt.Println(harness.FormatAblation(harness.TLBAblation()))
	}
}
