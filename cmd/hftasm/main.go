// Command hftasm assembles PA-lite assembly (the instruction set of the
// simulated processor) and prints a listing, raw hex words, or symbol
// table. It is the developer tool for writing guest code.
//
// Usage:
//
//	hftasm [-hex] [-syms] [-kernel] [file.s]
//
// With -kernel, the built-in guest kernel is assembled instead of a
// file (useful for inspecting the reproduction's guest OS).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/guest"
)

func main() {
	var (
		hexOut = flag.Bool("hex", false, "print raw hex words instead of a listing")
		syms   = flag.Bool("syms", false, "print the symbol table")
		kernel = flag.Bool("kernel", false, "assemble the built-in guest kernel")
	)
	flag.Parse()

	var name, src string
	switch {
	case *kernel:
		name, src = "kernel.s", guest.KernelSource
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftasm: %v\n", err)
			os.Exit(1)
		}
		name, src = flag.Arg(0), string(b)
	default:
		fmt.Fprintln(os.Stderr, "hftasm: need a source file or -kernel")
		os.Exit(2)
	}

	p, err := asm.Assemble(name, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hftasm: %v\n", err)
		os.Exit(1)
	}
	switch {
	case *syms:
		for _, n := range p.SymbolsSorted() {
			fmt.Printf("%08x %s\n", p.Symbols[n], n)
		}
	case *hexOut:
		for i, w := range p.Words {
			fmt.Printf("%08x: %08x\n", p.Origin+uint32(4*i), w)
		}
	default:
		fmt.Print(p.Disassemble())
	}
	fmt.Fprintf(os.Stderr, "hftasm: %d words, origin %#x\n", len(p.Words), p.Origin)
}
