package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	hft "repro"
)

// runScenario drives a live cluster from a command script — the
// interactive counterpart of the one-shot mode. Commands, one per line
// (# starts a comment):
//
//	run <duration>        advance virtual time (e.g. run 20ms, run 1.5s)
//	run-to <time>         advance to an absolute virtual time (no-op if past)
//	until-epoch <n>       advance until the coordinator commits epoch n
//	until-commit <n>      advance until cumulative commit ordinal n — the
//	                      replayable coordinate chaos scenarios use (it
//	                      survives failovers; the epoch counter resets)
//	fail primary          failstop the primary now
//	fail backup <i>       failstop backup i (1-based) now
//	addbackup             reintegrate a new backup by live state transfer
//	save <path>           checkpoint the session to a file
//	restore <path>        replace the session with a restored checkpoint
//	link bw=<bps> lat=<duration> drop=<n>
//	                      degrade the hypervisor links mid-run
//	snapshot              print the current session state
//	wait                  run to completion and print the result
//	check                 verify the completed run against the bare
//	                      baseline (digest + output invariants); a
//	                      mismatch fails the scenario with exit 1
//
// Events (epoch commits are summarized; everything else prints as it
// happens) stream to stdout while the scenario runs.
func runScenario(cluster *hft.Cluster, script io.Reader, echo bool, verify func(hft.Result) error) error {
	st := &scenarioState{epochs: new(int), verify: verify}
	st.attach(cluster)

	sc := bufio.NewScanner(script)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if echo {
			fmt.Printf("> %s\n", line)
		}
		if err := st.command(line); err != nil {
			return err
		}
		// Let the event pump catch up so output interleaves readably.
		time.Sleep(2 * time.Millisecond)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	final := st.cluster.Snapshot().Now
	st.detach()
	fmt.Printf("scenario finished at %v after %d epoch commits\n", final, *st.epochs)
	return nil
}

// scenarioState holds the live cluster plus its event pump; `restore`
// swaps both for a session reconstructed from a checkpoint.
type scenarioState struct {
	cluster *hft.Cluster
	epochs  *int
	pumped  chan struct{}
	verify  func(hft.Result) error // `check`'s oracle (nil: unavailable)
}

// attach subscribes the event pump to a (new) cluster.
func (st *scenarioState) attach(c *hft.Cluster) {
	st.cluster = c
	events := c.Events()
	done := make(chan struct{})
	st.pumped = done
	epochs := st.epochs
	go func() {
		defer close(done)
		for ev := range events {
			if ev.Kind == hft.EventEpochCommitted || ev.Kind == hft.EventBackupEpoch ||
				ev.Kind == hft.EventDiskOp {
				if ev.Kind == hft.EventEpochCommitted {
					*epochs++
				}
				continue // too chatty to print individually
			}
			fmt.Printf("  | %v\n", ev)
		}
	}()
}

// detach closes the current cluster and waits for its pump to drain.
func (st *scenarioState) detach() {
	st.cluster.Close()
	<-st.pumped
}

// command executes one line.
func (st *scenarioState) command(line string) error {
	cluster := st.cluster
	fields := strings.Fields(line)
	switch fields[0] {
	case "run":
		if len(fields) != 2 {
			return fmt.Errorf("usage: run <duration>")
		}
		d, err := parseSimDuration(fields[1])
		if err != nil {
			return err
		}
		snap, err := cluster.RunFor(d)
		if err != nil {
			return err
		}
		fmt.Printf("  advanced to %v (epoch %d, done=%v)\n", snap.Now, snap.Epochs, snap.Done)
	case "run-to":
		if len(fields) != 2 {
			return fmt.Errorf("usage: run-to <time>")
		}
		target, err := parseSimDuration(fields[1])
		if err != nil {
			return err
		}
		if now := cluster.Now(); target > now {
			snap, err := cluster.RunFor(target - now)
			if err != nil {
				return err
			}
			fmt.Printf("  advanced to %v (commit %d, done=%v)\n", snap.Now, snap.Commits, snap.Done)
		}
	case "until-commit":
		if len(fields) != 2 {
			return fmt.Errorf("usage: until-commit <n>")
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		snap, err := cluster.RunUntil(func(s hft.Snapshot) bool { return s.Commits >= n })
		if err != nil {
			return err
		}
		fmt.Printf("  paused at %v (commit %d, done=%v)\n", snap.Now, snap.Commits, snap.Done)
	case "until-epoch":
		if len(fields) != 2 {
			return fmt.Errorf("usage: until-epoch <n>")
		}
		n, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		snap, err := cluster.RunUntil(func(s hft.Snapshot) bool { return s.Epochs >= n })
		if err != nil {
			return err
		}
		fmt.Printf("  paused at %v (epoch %d, done=%v)\n", snap.Now, snap.Epochs, snap.Done)
	case "fail":
		if len(fields) >= 2 && fields[1] == "primary" {
			cluster.FailPrimary()
			return nil
		}
		if len(fields) == 3 && fields[1] == "backup" {
			i, err := strconv.Atoi(fields[2])
			if err != nil {
				return err
			}
			return cluster.FailBackup(i)
		}
		return fmt.Errorf("usage: fail primary | fail backup <i>")
	case "link":
		var q hft.LinkQuality
		for _, kv := range fields[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("link: bad parameter %q (want k=v)", kv)
			}
			switch k {
			case "bw":
				bps, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return err
				}
				q.BitsPerSecond = bps
			case "lat":
				d, err := parseSimDuration(v)
				if err != nil {
					return err
				}
				q.Latency = d
			case "drop":
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				q.DropNext = n
			default:
				return fmt.Errorf("link: unknown parameter %q", k)
			}
		}
		return cluster.SetLinkQuality(q)
	case "addbackup":
		n, err := cluster.AddBackup()
		if err != nil {
			return err
		}
		fmt.Printf("  node%d joined by state transfer at %v\n", n, cluster.Now())
	case "save":
		if len(fields) != 2 {
			return fmt.Errorf("usage: save <path>")
		}
		f, err := os.Create(fields[1])
		if err != nil {
			return err
		}
		if err := cluster.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  checkpointed at %v to %s\n", cluster.Now(), fields[1])
	case "restore":
		if len(fields) != 2 {
			return fmt.Errorf("usage: restore <path>")
		}
		f, err := os.Open(fields[1])
		if err != nil {
			return err
		}
		restored, err := hft.Restore(f)
		f.Close()
		if err != nil {
			return err
		}
		st.detach()
		st.attach(restored)
		fmt.Printf("  restored session at %v from %s (state verified)\n", restored.Now(), fields[1])
	case "snapshot":
		s := cluster.Snapshot()
		fmt.Printf("  t=%v epoch=%d instr=%d acting=node%d promoted=%v done=%v\n",
			s.Now, s.Epochs, s.GuestInstructions, s.Acting, s.Promoted, s.Done)
		fmt.Printf("  msgs=%d acks=%d ints-forwarded=%d uncertain=%d disk-ops=%d console=%q\n",
			s.MessagesSent, s.AcksReceived, s.IntsForwarded, s.UncertainSynthesized, s.DiskOps, s.Console)
	case "wait":
		res, err := cluster.Wait(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("  completed at %v: checksum=%#x promoted=%v console=%q\n",
			res.Time, res.Checksum, res.Promoted, res.Console)
	case "check":
		if st.verify == nil {
			return fmt.Errorf("check: no baseline available for this configuration")
		}
		res, err := cluster.Wait(context.Background())
		if err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if err := st.verify(res); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		fmt.Printf("  check passed: digest and output match the bare run\n")
	default:
		return fmt.Errorf("unknown scenario command %q", fields[0])
	}
	return nil
}

// parseSimDuration parses Go duration syntax into simulated time
// (1 ns wall = 1 ns virtual).
func parseSimDuration(s string) (hft.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return hft.Duration(d.Nanoseconds()), nil
}

// openScenario resolves the -scenario argument ("-" = stdin).
func openScenario(path string) (io.ReadCloser, bool, error) {
	if path == "-" {
		return os.Stdin, true, nil
	}
	f, err := os.Open(path)
	return f, false, err
}
