// Command hftsim runs one configured simulation of the fault-tolerant
// prototype and reports timing, protocol statistics and (optionally)
// failover behaviour. With -scenario it instead drives a LIVE cluster
// session from a command script: advance virtual time, failstop
// processors, degrade the link, take snapshots — interactively (pipe
// stdin) or from a file.
//
// Usage:
//
//	hftsim -workload cpu|write|read [-iters N] [-ops N] [-epoch N]
//	       [-protocol old|new] [-link ethernet|atm] [-fail-at-ms T]
//	       [-bare] [-seed N] [-backups N] [-scenario FILE|-]
//
// Scenario example (see runScenario for the command set):
//
//	hftsim -workload write -ops 6 -scenario - <<'EOF'
//	run 20ms
//	link bw=1000000 lat=500us     # degrade to 1 Mbps mid-run
//	run 20ms
//	fail primary                  # failstop; the backup takes over
//	wait
//	EOF
package main

import (
	"flag"
	"fmt"
	"os"

	hft "repro" // the public facade lives at the module root
)

func main() {
	var (
		workload = flag.String("workload", "cpu", "cpu, write or read")
		iters    = flag.Uint("iters", 20000, "CPU workload iterations")
		ops      = flag.Uint("ops", 8, "disk workload operations")
		count    = flag.Uint("count", 8192, "bytes per disk operation")
		epoch    = flag.Uint64("epoch", 4096, "epoch length in instructions")
		protocol = flag.String("protocol", "old", "old (P2 waits) or new (§4.3)")
		link     = flag.String("link", "ethernet", "ethernet or atm")
		failAt   = flag.Float64("fail-at-ms", 0, "failstop the primary at this time (ms); 0 = no failure")
		bare     = flag.Bool("bare", false, "run on bare hardware only (the baseline)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		backups  = flag.Int("backups", 1, "backup replicas (t-fault tolerance)")
		scenario = flag.String("scenario", "", "drive a live cluster from this command script (- = stdin)")
	)
	flag.Parse()

	var w hft.Workload
	switch *workload {
	case "cpu":
		w = hft.CPUIntensive(uint32(*iters))
	case "write":
		w = hft.DiskWrite(uint32(*ops), uint32(*count))
	case "read":
		w = hft.DiskRead(uint32(*ops), uint32(*count))
	default:
		fmt.Fprintf(os.Stderr, "hftsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	cfg := hft.Config{
		EpochLength: *epoch,
		Seed:        *seed,
	}
	switch *protocol {
	case "old":
		cfg.Protocol = hft.ProtocolOld
	case "new":
		cfg.Protocol = hft.ProtocolNew
	default:
		fmt.Fprintf(os.Stderr, "hftsim: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	switch *link {
	case "ethernet":
		cfg.Link = hft.LinkEthernet10
	case "atm":
		cfg.Link = hft.LinkATM155
	default:
		fmt.Fprintf(os.Stderr, "hftsim: unknown link %q\n", *link)
		os.Exit(2)
	}
	if *failAt > 0 {
		cfg.FailPrimaryAt = hft.Duration(*failAt * float64(hft.Millisecond))
	}
	cfg.Backups = *backups

	if *scenario != "" {
		if *bare {
			fmt.Fprintln(os.Stderr, "hftsim: -bare and -scenario are mutually exclusive (a scenario drives a replicated cluster)")
			os.Exit(2)
		}
		script, isStdin, err := openScenario(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: -scenario: %v\n", err)
			os.Exit(1)
		}
		if !isStdin {
			defer script.Close()
		}
		cluster, err := hft.NewCluster(hft.WithConfig(cfg, w))
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		if err := runScenario(cluster, script, true); err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}

	bareRes, err := hft.RunBare(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hftsim: bare run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bare hardware:   %-12v console=%q checksum=%#x\n",
		bareRes.Time, bareRes.Console, bareRes.Checksum)
	if *bare {
		return
	}

	repl, err := hft.Run(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hftsim: replicated run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replicated:      %-12v console=%q checksum=%#x\n",
		repl.Time, repl.Console, repl.Checksum)
	fmt.Printf("normalized perf: %.3f\n", float64(repl.Time)/float64(bareRes.Time))
	fmt.Printf("protocol:        %s, epoch %d, link %s\n", *protocol, *epoch, *link)
	fmt.Printf("messages sent:   %d\n", repl.MessagesSent)
	if repl.Promoted {
		fmt.Printf("FAILOVER:        backup promoted; %d uncertain interrupt(s) synthesized (P7)\n",
			repl.UncertainSynthesized)
	}
	if repl.Divergences != 0 {
		fmt.Printf("WARNING:         %d divergences detected\n", repl.Divergences)
	}
	if repl.Checksum != bareRes.Checksum {
		fmt.Printf("ERROR:           checksum differs from bare run\n")
		os.Exit(1)
	}
}
