// Command hftsim runs one configured simulation of the fault-tolerant
// prototype and reports timing, protocol statistics and (optionally)
// failover behaviour. With -scenario it instead drives a LIVE cluster
// session from a command script: advance virtual time, failstop
// processors, degrade the link, take snapshots — interactively (pipe
// stdin) or from a file. With -campaign it runs the chaos engine: N
// seeded random perturbation schedules, every run checked against the
// replication invariants, violations automatically shrunk to minimal
// replayable scenario scripts.
//
// Usage:
//
//	hftsim -workload cpu|write|read|copy|echo|serve [-iters N] [-ops N]
//	       [-count N] [-epoch N] [-protocol old|new]
//	       [-link ethernet|atm] [-fail-at-ms T] [-bare] [-seed N]
//	       [-backups N] [-window N] [-adaptive] [-scenario FILE|-]
//	       [-campaign N] [-campaign-seed N] [-campaign-dir DIR]
//	       [-parallel N]
//
// The copy, echo and serve workloads need the cluster options API (a
// second disk, scripted terminal input, a simulated client
// population), so they run under -scenario and -campaign only, with
// canonical device configurations.
//
// Scenario example (see runScenario for the command set):
//
//	hftsim -workload write -ops 6 -scenario - <<'EOF'
//	run 20ms
//	link bw=1000000 lat=500us     # degrade to 1 Mbps mid-run
//	run 20ms
//	fail primary                  # failstop; the backup takes over
//	wait
//	check                         # exit 1 unless output+digest match bare
//	EOF
//
// Campaign example (nightly CI runs exactly this):
//
//	hftsim -campaign 500 -campaign-seed 19951203 -campaign-dir ./chaos -parallel 0
package main

import (
	"flag"
	"fmt"
	"os"

	hft "repro" // the public facade lives at the module root
	"repro/internal/chaos"
)

func main() {
	var (
		workload = flag.String("workload", "cpu", "cpu, write, read, copy, echo or serve (copy/echo/serve: scenario and campaign modes only)")
		iters    = flag.Uint("iters", 20000, "CPU workload iterations")
		ops      = flag.Uint("ops", 8, "disk workload operations")
		count    = flag.Uint("count", 8192, "bytes per disk operation")
		epoch    = flag.Uint64("epoch", 4096, "epoch length in instructions")
		protocol = flag.String("protocol", "old", "old (P2 waits) or new (§4.3)")
		link     = flag.String("link", "ethernet", "ethernet or atm")
		failAt   = flag.Float64("fail-at-ms", 0, "failstop the primary at this time (ms); 0 = no failure")
		bare     = flag.Bool("bare", false, "run on bare hardware only (the baseline)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		backups  = flag.Int("backups", 1, "backup replicas (t-fault tolerance)")
		window   = flag.Int("window", 0, "output-commit window depth (0 = classic lock-step protocol)")
		adaptive = flag.Bool("adaptive", false, "output-triggered epoch boundaries (needs -window)")
		scenario = flag.String("scenario", "", "drive a live cluster from this command script (- = stdin)")

		campaign     = flag.Int("campaign", 0, "run a chaos campaign of N random schedules (0 = off)")
		campaignSeed = flag.Int64("campaign-seed", 1, "campaign master seed (run i replays independently)")
		campaignDir  = flag.String("campaign-dir", "", "write shrunk scenario artifacts here")
		parallel     = flag.Int("parallel", 0, "campaign worker count (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	if *campaign > 0 {
		workers := *parallel
		if workers < 1 {
			workers = -1 // fleet scheduler: all cores
		}
		rep, err := chaos.RunCampaign(chaos.CampaignOptions{
			Runs:    *campaign,
			Seed:    *campaignSeed,
			Dir:     *campaignDir,
			Log:     os.Stdout,
			Workers: workers,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: campaign: %v\n", err)
			os.Exit(1)
		}
		if rep.Failed() {
			fmt.Printf("campaign FAILED: %d of %d runs violated invariants\n", len(rep.Violations), rep.Runs)
			os.Exit(1)
		}
		fmt.Printf("campaign passed: %d runs, all invariants held\n", rep.Runs)
		return
	}

	shape, err := resolveShape(*workload, uint32(*iters), uint32(*ops), uint32(*count))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hftsim: %v\n", err)
		os.Exit(2)
	}

	var proto hft.Protocol
	switch *protocol {
	case "old":
		proto = hft.ProtocolOld
	case "new":
		proto = hft.ProtocolNew
	default:
		fmt.Fprintf(os.Stderr, "hftsim: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	var linkModel hft.LinkModel
	switch *link {
	case "ethernet":
		linkModel = hft.Ethernet10()
	case "atm":
		linkModel = hft.ATM155()
	default:
		fmt.Fprintf(os.Stderr, "hftsim: unknown link %q\n", *link)
		os.Exit(2)
	}

	if *scenario != "" {
		if *bare {
			fmt.Fprintln(os.Stderr, "hftsim: -bare and -scenario are mutually exclusive (a scenario drives a replicated cluster)")
			os.Exit(2)
		}
		script, isStdin, err := openScenario(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: -scenario: %v\n", err)
			os.Exit(1)
		}
		if !isStdin {
			defer script.Close()
		}
		opts := shape.ClusterOptions(*seed, *epoch, proto, linkModel, *backups)
		if *window > 0 {
			opts = append(opts, hft.WithOutputCommit(hft.OutputCommit{Window: *window, Adaptive: *adaptive}))
		}
		if *failAt > 0 {
			opts = append(opts, hft.WithFailPrimaryAt(hft.Duration(*failAt*float64(hft.Millisecond))))
		}
		cluster, err := hft.NewCluster(opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		// `check` verifies the replay against the bare reference for
		// the same shape — an emitted chaos reproduction exits 1 while
		// its bug is alive and 0 once fixed.
		verify := func(res hft.Result) error {
			checksum, console, replies, err := chaos.Bare(shape, *seed, *epoch)
			if err != nil {
				return err
			}
			if res.Checksum != checksum {
				return fmt.Errorf("digest violation: checksum %#x, bare run computed %#x", res.Checksum, checksum)
			}
			if res.Console != console {
				return fmt.Errorf("output violation: console %q, bare run produced %q", res.Console, console)
			}
			if res.NetReplies != replies {
				return fmt.Errorf("service violation: reply transcript %d bytes, bare run produced %d bytes",
					len(res.NetReplies), len(replies))
			}
			return nil
		}
		if err := runScenario(cluster, script, true, verify); err != nil {
			fmt.Fprintf(os.Stderr, "hftsim: scenario: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *workload == "copy" || *workload == "echo" || *workload == "serve" {
		fmt.Fprintf(os.Stderr, "hftsim: workload %q needs -scenario or -campaign (it requires the cluster options API)\n", *workload)
		os.Exit(2)
	}

	cfg := hft.Config{
		EpochLength: *epoch,
		Seed:        *seed,
		Protocol:    proto,
		Backups:     *backups,
	}
	switch *link {
	case "ethernet":
		cfg.Link = hft.LinkEthernet10
	case "atm":
		cfg.Link = hft.LinkATM155
	}
	if *failAt > 0 {
		cfg.FailPrimaryAt = hft.Duration(*failAt * float64(hft.Millisecond))
	}
	w := shape.Guest

	bareRes, err := hft.RunBare(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hftsim: bare run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bare hardware:   %-12v console=%q checksum=%#x\n",
		bareRes.Time, bareRes.Console, bareRes.Checksum)
	if *bare {
		return
	}

	repl, err := hft.Run(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hftsim: replicated run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replicated:      %-12v console=%q checksum=%#x\n",
		repl.Time, repl.Console, repl.Checksum)
	fmt.Printf("normalized perf: %.3f\n", float64(repl.Time)/float64(bareRes.Time))
	fmt.Printf("protocol:        %s, epoch %d, link %s\n", *protocol, *epoch, *link)
	fmt.Printf("messages sent:   %d\n", repl.MessagesSent)
	if repl.Promoted {
		fmt.Printf("FAILOVER:        backup promoted; %d uncertain interrupt(s) synthesized (P7)\n",
			repl.UncertainSynthesized)
	}
	if repl.Divergences != 0 {
		fmt.Printf("WARNING:         %d divergences detected\n", repl.Divergences)
	}
	if repl.Checksum != bareRes.Checksum {
		fmt.Printf("ERROR:           checksum differs from bare run\n")
		os.Exit(1)
	}
}

// resolveShape builds the workload shape from flags. The cpu/write/
// read/copy sizes come from -iters/-ops/-count; echo always uses the
// canonical terminal script (terminal input is not flag-expressible).
func resolveShape(name string, iters, ops, count uint32) (chaos.Workload, error) {
	switch name {
	case "cpu":
		return chaos.Workload{Name: name, Guest: hft.CPUIntensive(iters)}, nil
	case "write":
		return chaos.Workload{Name: name, Guest: hft.DiskWrite(ops, count)}, nil
	case "read":
		return chaos.Workload{Name: name, Guest: hft.DiskRead(ops, count)}, nil
	case "copy":
		return chaos.Workload{Name: name, Guest: hft.TwoDiskCopy(ops, count), ExtraDisks: 1}, nil
	case "echo":
		return chaos.Workload{Name: name, Guest: hft.TerminalEcho(), Terminal: chaos.EchoScript()}, nil
	case "serve":
		// -ops sizes the request stream; the per-request compute and the
		// client population are canonical (chaos.ServeLoad), so emitted
		// scenarios replay against the identical cluster.
		return chaos.Workload{Name: name, Guest: hft.ServeRequests(ops, 50), ClientLoad: chaos.ServeLoad()}, nil
	}
	return chaos.Workload{}, fmt.Errorf("unknown workload %q", name)
}
