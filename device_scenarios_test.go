package hft

// Differential tests for the scenarios the generic device layer opens:
// multi-disk workloads (WithDisk, TwoDiskCopy) and terminal input
// (WithTerminal, TerminalEcho). The paper's claim — the environment
// cannot distinguish the replicated system from a single processor —
// is pinned replicated == bare for every scenario, including primary
// failstop and AddBackup reintegration, and multi-device sessions must
// checkpoint/restore bit-identically under both protocols and both
// links.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// fastDiskOpts keeps device latencies short so tests stay quick.
func fastDiskOpts() []Option {
	return []Option{
		WithDiskLatency(300*Microsecond, 350*Microsecond),
		WithDisk(DiskSpec{ReadLatency: 250 * Microsecond, WriteLatency: 400 * Microsecond}),
	}
}

// echoScript scripts n printable input bytes every step, then EOT.
func echoScript(n int, step Duration) []TerminalInput {
	var script []TerminalInput
	for i := 0; i < n; i++ {
		script = append(script, TerminalInput{
			At:   Duration(i+1) * step,
			Data: string(rune('a' + i%26)),
		})
	}
	script = append(script, TerminalInput{
		At:   Duration(n+1) * step,
		Data: string([]byte{TerminalEOT}),
	})
	return script
}

// runScenario drives a cluster built from opts to completion.
func runScenario(t *testing.T, opts ...Option) (Result, *Cluster) {
	t.Helper()
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestPanic != 0 {
		t.Fatalf("guest panic %#x", res.GuestPanic)
	}
	return res, c
}

func TestTwoDiskCopyDifferential(t *testing.T) {
	w := TwoDiskCopy(5, 1024)
	base := append([]Option{WithWorkload(w)}, fastDiskOpts()...)

	bare, cb := runScenario(t, append(base, withBare())...)
	repl, cr := runScenario(t, base...)
	if repl.Checksum != bare.Checksum || repl.Console != bare.Console {
		t.Fatalf("replicated (%#x, %q) != bare (%#x, %q)",
			repl.Checksum, repl.Console, bare.Checksum, bare.Console)
	}
	if repl.Console != "2\n" {
		t.Errorf("console = %q, want 2\\n", repl.Console)
	}
	// Both disks saw traffic, and disk 1 holds the copied blocks.
	bd, rd := cb.eng.Disks(), cr.eng.Disks()
	if len(rd) != 2 {
		t.Fatalf("replicated cluster has %d disks, want 2", len(rd))
	}
	if len(rd[1].Log) == 0 {
		t.Fatal("disk 1 never touched")
	}
	for blk := uint32(16); blk < 21; blk++ {
		want := bd[1].ReadBlockDirect(blk)
		got := rd[1].ReadBlockDirect(blk)
		if !bytes.Equal(want, got) {
			t.Errorf("disk1 block %d differs between bare and replicated", blk)
		}
		src := rd[0].ReadBlockDirect(blk)
		if !bytes.Equal(got[:1024], src[:1024]) {
			t.Errorf("block %d not copied from disk0 to disk1", blk)
		}
	}
}

func TestTwoDiskCopyFailoverDifferential(t *testing.T) {
	w := TwoDiskCopy(5, 1024)
	base := append([]Option{WithWorkload(w)}, fastDiskOpts()...)

	bare, cb := runScenario(t, append(base, withBare())...)
	repl, cr := runScenario(t, append(base,
		WithFailPrimaryAt(2*Millisecond),
		WithDetectTimeout(3*Millisecond))...)
	if !repl.Promoted {
		t.Fatal("primary failstop did not promote the backup")
	}
	if repl.Checksum != bare.Checksum || repl.Console != bare.Console {
		t.Fatalf("failover run (%#x, %q) != bare (%#x, %q)",
			repl.Checksum, repl.Console, bare.Checksum, bare.Console)
	}
	// Environment consistency on BOTH disks: committed writes per block
	// repeat identical content only (IO2 retries), and final contents
	// match the bare run.
	bd, rd := cb.eng.Disks(), cr.eng.Disks()
	for d := 0; d < 2; d++ {
		for blk := uint32(16); blk < 21; blk++ {
			hist := rd[d].WriteHistory(blk)
			for i := 1; i < len(hist); i++ {
				if hist[i] != hist[0] {
					t.Errorf("disk%d block %d: divergent writes %v", d, blk, hist)
				}
			}
			if !bytes.Equal(bd[d].ReadBlockDirect(blk), rd[d].ReadBlockDirect(blk)) {
				t.Errorf("disk%d block %d differs from bare after failover", d, blk)
			}
		}
	}
}

func TestTerminalEchoDifferential(t *testing.T) {
	script := echoScript(12, 2*Millisecond)
	base := []Option{WithWorkload(TerminalEcho()), WithTerminal(script...)}

	bare, _ := runScenario(t, append(base, withBare())...)
	want := "abcdefghijkl\n"
	if bare.Console != want {
		t.Fatalf("bare transcript = %q, want %q", bare.Console, want)
	}
	repl, _ := runScenario(t, base...)
	if repl.Console != bare.Console || repl.Checksum != bare.Checksum {
		t.Fatalf("replicated (%#x, %q) != bare (%#x, %q)",
			repl.Checksum, repl.Console, bare.Checksum, bare.Console)
	}
}

func TestTerminalEchoFailoverDifferential(t *testing.T) {
	// Primary dies mid-stream: input keeps arriving during the
	// detection window and after promotion. The promoted backup drains
	// undelivered input from its own port (generalized P7), re-emits
	// the failover epoch's suppressed echoes (ordinal dedup makes that
	// exactly-once), and the transcript equals the bare run's.
	script := echoScript(16, 2*Millisecond)
	base := []Option{WithWorkload(TerminalEcho()), WithTerminal(script...)}

	bare, _ := runScenario(t, append(base, withBare())...)
	for _, proto := range []Protocol{ProtocolOld, ProtocolNew} {
		for _, failAt := range []Duration{5 * Millisecond, 11 * Millisecond, 21 * Millisecond} {
			repl, _ := runScenario(t, append(base,
				WithProtocol(proto),
				WithFailPrimaryAt(failAt),
				WithDetectTimeout(3*Millisecond))...)
			if !repl.Promoted {
				t.Fatalf("proto=%v failAt=%v: no promotion", proto, failAt)
			}
			if repl.Console != bare.Console || repl.Checksum != bare.Checksum {
				t.Fatalf("proto=%v failAt=%v: replicated (%#x, %q) != bare (%#x, %q)",
					proto, failAt, repl.Checksum, repl.Console, bare.Checksum, bare.Console)
			}
		}
	}
}

func TestTerminalEchoRepairChainDifferential(t *testing.T) {
	// The console-failover satellite: primary failstop, AddBackup
	// reintegration, then a failstop of the promoted backup — the
	// reintegrated joiner finishes the stream. Transcript still equals
	// the bare run's, byte for byte.
	script := echoScript(20, 5*Millisecond)
	base := []Option{WithWorkload(TerminalEcho()), WithTerminal(script...)}

	bare, _ := runScenario(t, append(base, withBare())...)

	c, err := NewCluster(append(base, WithDetectTimeout(3*Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RunFor(8 * Millisecond); err != nil {
		t.Fatal(err)
	}
	c.FailPrimary()
	if _, err := c.RunUntil(func(s Snapshot) bool { return s.Promoted }); err != nil {
		t.Fatal(err)
	}
	n, err := c.AddBackup()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("joiner index = %d, want 2", n)
	}
	// Let the transfer land and the joiner catch up, then kill the
	// acting coordinator; the reintegrated node must take over.
	if _, err := c.RunFor(40 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.FailBackup(1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestPanic != 0 {
		t.Fatalf("guest panic %#x", res.GuestPanic)
	}
	if res.Console != bare.Console || res.Checksum != bare.Checksum {
		t.Fatalf("repair chain (%#x, %q) != bare (%#x, %q)",
			res.Checksum, res.Console, bare.Checksum, bare.Console)
	}
}

func TestMultiDeviceSnapshotRoundTrip(t *testing.T) {
	// Snapshot round-trips of multi-device state — two disks plus a
	// terminal with pending input — for both protocols and both links.
	// The copy workload never reads the terminal, so scripted input
	// stays pending in the console shadow across the checkpoint, and
	// Restore's section-by-section verification covers it.
	cases := []struct {
		name  string
		proto Protocol
		link  LinkModel
	}{
		{"old-ethernet", ProtocolOld, Ethernet10()},
		{"new-ethernet", ProtocolNew, Ethernet10()},
		{"old-atm", ProtocolOld, ATM155()},
		{"new-atm", ProtocolNew, ATM155()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Cluster {
				opts := append([]Option{
					WithWorkload(TwoDiskCopy(4, 512)),
					WithProtocol(tc.proto),
					WithLink(tc.link),
					WithTerminal(TerminalInput{At: 500 * Microsecond, Data: "zz"}),
				}, fastDiskOpts()...)
				c, err := NewCluster(opts...)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}

			orig := mk()
			defer orig.Close()
			if _, err := orig.RunUntil(func(s Snapshot) bool { return s.DiskOps >= 3 }); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.Save(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			finishAndCompare(t, fmt.Sprintf("%s multi-device", tc.name), orig, restored)

			// And against a never-snapshotted control run.
			control := mk()
			defer control.Close()
			cres, err := control.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			rres, err := restored.Result()
			if err != nil {
				t.Fatal(err)
			}
			if cres != rres {
				t.Fatalf("restored result differs from control:\n  restored: %+v\n  control:  %+v", rres, cres)
			}
		})
	}
}

func TestDeviceEventsTagged(t *testing.T) {
	// EventDiskOp carries the disk identity; terminal input surfaces as
	// its own tagged event.
	opts := append([]Option{
		WithWorkload(TwoDiskCopy(2, 512)),
		WithTerminal(TerminalInput{At: 1 * Millisecond, Data: "k"}),
	}, fastDiskOpts()...)
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	events := c.Events()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()
	devs := map[string]int{}
	termData := ""
	for ev := range events {
		switch ev.Kind {
		case EventDiskOp:
			devs[ev.Device()]++
		case EventTerminalInput:
			devs[ev.Device()]++
			termData += ev.TerminalData()
		}
	}
	if devs["disk0"] == 0 || devs["disk1"] == 0 {
		t.Errorf("disk events not tagged per device: %v", devs)
	}
	if devs["console"] != 1 || termData != "k" {
		t.Errorf("terminal input event missing or wrong: %v data %q", devs, termData)
	}
}

func TestValidationOfDeviceScenarios(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"copy-without-second-disk", []Option{WithWorkload(TwoDiskCopy(2, 512))}},
		{"echo-without-terminal", []Option{WithWorkload(TerminalEcho())}},
		{"echo-without-eot", []Option{
			WithWorkload(TerminalEcho()),
			WithTerminal(TerminalInput{At: Millisecond, Data: "x"}),
		}},
		{"negative-disk-latency", []Option{
			WithWorkload(CPUIntensive(10)),
			WithDisk(DiskSpec{ReadLatency: -1}),
		}},
		{"empty-terminal-script", []Option{WithWorkload(CPUIntensive(10)), WithTerminal()}},
		{"zero-time-input", []Option{
			WithWorkload(CPUIntensive(10)),
			WithTerminal(TerminalInput{At: 0, Data: "x"}),
		}},
	}
	for _, tc := range cases {
		if _, err := NewCluster(tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestTerminalScriptOrderIndependentValidation(t *testing.T) {
	// EOT validation follows delivery time, not option order.
	outOfOrder := []Option{
		WithWorkload(TerminalEcho()),
		WithTerminal(
			TerminalInput{At: 10 * Millisecond, Data: string([]byte{TerminalEOT})},
			TerminalInput{At: 1 * Millisecond, Data: "x"},
		),
	}
	if _, err := NewCluster(outOfOrder...); err != nil {
		t.Errorf("temporally-EOT-terminated script rejected: %v", err)
	}
	trailing := []Option{
		WithWorkload(TerminalEcho()),
		WithTerminal(
			TerminalInput{At: 1 * Millisecond, Data: string([]byte{TerminalEOT})},
			TerminalInput{At: 10 * Millisecond, Data: "x"},
		),
	}
	if _, err := NewCluster(trailing...); err == nil {
		t.Error("script with input after EOT accepted (it would never be echoed)")
	}
}
