// Package hft is a reproduction of "Hypervisor-based Fault-tolerance"
// (Bressoud & Schneider, SOSP 1995) as a self-contained Go library.
//
// The package simulates the paper's prototype: two PA-RISC-like
// processors (PA-lite, interpreted deterministically), each under a
// hypervisor augmented with the paper's replica-coordination protocols
// (rules P1–P7 and the §4.3 revision), sharing a dual-ported SCSI disk
// and connected by a modelled 10 Mbps Ethernet (or 155 Mbps ATM) link.
// An unmodified guest kernel — written in PA-lite assembly — runs the
// paper's workloads either bare (the baseline) or replicated.
//
// # Sessions
//
// The primary surface is the Cluster: a long-lived replicated virtual
// machine that boots lazily, advances under caller control, accepts
// live perturbations mid-run, and exposes snapshots and an event
// stream:
//
//	c, _ := hft.NewCluster(hft.WithWorkload(hft.CPUIntensive(20000)))
//	defer c.Close()
//	c.RunFor(20 * hft.Millisecond)
//	c.FailPrimary()                       // failstop, live
//	res, _ := c.Wait(context.Background()) // backup finishes the workload
//
// The extension points are interfaces: LinkModel (Ethernet10 and
// ATM155 are the built-ins), DiskBackend, and Program for guest
// workloads beyond the paper's three benchmarks.
//
// # Recovery and reintegration
//
// Failures are injected live (Cluster.FailPrimary, Cluster.FailBackup)
// or on a schedule (WithFailPrimaryAt); the backup detects the
// failstop, finishes the failover epoch, synthesizes uncertain
// interrupts for outstanding I/O (rule P7) and takes over without the
// environment noticing anything but a device retry. After a failover
// the cluster runs unprotected until Cluster.AddBackup reintegrates a
// new backup by live state transfer over the simulated link — the
// repair half of the paper's §5 story. Sessions checkpoint with
// Cluster.Save and resume bit-identically with Restore.
//
// # Legacy one-shot runs
//
// The pre-session batch API remains for compatibility, reimplemented
// as thin wrappers over Cluster sessions and pinned byte-for-byte to
// its historical results:
//
//	w := hft.CPUIntensive(10000)
//	np, err := hft.NormalizedPerformance(hft.Config{EpochLength: 4096}, w)
//	// np ≈ 6.5: the paper's Figure 2 at 4K-instruction epochs.
//
// New code should start from NewCluster; capabilities added since the
// redesign (live perturbation, events, reintegration, checkpointing)
// exist only on the session surface.
package hft

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/guest"
	"repro/internal/replication"
	"repro/internal/sim"
)

// Protocol selects the replica-coordination variant.
type Protocol = replication.Protocol

// Protocol variants (§2 vs §4.3 of the paper).
const (
	// ProtocolOld awaits acknowledgements at every epoch boundary (P2).
	ProtocolOld = replication.ProtocolOld
	// ProtocolNew awaits acknowledgements only before I/O operations.
	ProtocolNew = replication.ProtocolNew
)

// Workload describes a guest benchmark; construct with CPUIntensive,
// DiskRead or DiskWrite.
type Workload = guest.Workload

// CPUIntensive is §4.1's workload: a Dhrystone-like loop of the given
// iteration count (~35 instructions each).
func CPUIntensive(iters uint32) Workload { return guest.CPUIntensive(iters) }

// DiskWrite is §4.2's write benchmark: ops random-block writes of count
// bytes, each awaited before the next. The per-operation computation
// phase and privileged-instruction density are paper-calibrated.
func DiskWrite(ops, count uint32) Workload {
	w := guest.DiskWrite(ops, count)
	w.PreOp, w.PrivOps = 5200, 1030
	return w
}

// DiskRead is §4.2's read benchmark.
func DiskRead(ops, count uint32) Workload {
	w := guest.DiskRead(ops, count)
	w.PreOp, w.PrivOps = 5200, 1030
	return w
}

// TwoDiskCopy is the multi-disk benchmark the generic device layer
// enables: per operation the guest generates a block, writes it to
// disk 0, reads it back, and copies it to disk 1 — two adapters, one
// outstanding operation at a time. Requires WithDisk (the cluster must
// carry a second disk).
func TwoDiskCopy(ops, count uint32) Workload { return guest.TwoDiskCopy(ops, count) }

// ServeRequests is the network-service benchmark: the guest polls the
// cluster's NIC for client request frames, checksums each payload,
// spends work iterations of a per-request compute phase (the service's
// application work), and transmits a [request-id, checksum] reply —
// exactly once, in request order, whatever fails over underneath.
// Requires WithClientLoad, which delivers the requests and measures
// what the clients observe (ServiceLatencies, ServiceBlackout). The
// reply transcript (Result.NetReplies) of a replicated run equals the
// bare run's byte for byte.
func ServeRequests(requests, work uint32) Workload { return guest.ServeRequests(requests, work) }

// TerminalEcho is the terminal-input benchmark: the guest consumes the
// console's scripted input (WithTerminal) and echoes every byte back,
// halting on TerminalEOT. Under replication, input reaches the guest as
// §2 interrupts at epoch boundaries; transcripts equal bare runs byte
// for byte, including across failovers.
func TerminalEcho() Workload { return guest.TerminalEcho() }

// Link identifies a built-in hypervisor-to-hypervisor channel in the
// legacy Config API. New code plugs a LinkModel into WithLink instead.
type Link string

// Supported links (Figure 4 compares them).
const (
	LinkEthernet10 Link = "ethernet10" // the prototype's 10 Mbps Ethernet
	LinkATM155     Link = "atm155"     // §4.3's 155 Mbps ATM
)

// Config parameterizes a one-shot run (the legacy API; Cluster options
// supersede it). Every field is validated before any simulation runs.
type Config struct {
	// EpochLength is instructions per epoch (default 4096, the paper's
	// reference point; HP-UX bounds it at 385,000).
	EpochLength uint64
	// Protocol selects Old (§2) or New (§4.3); default Old.
	Protocol Protocol
	// Link selects the channel model; default LinkEthernet10. Unknown
	// names are rejected up front.
	Link Link
	// Seed makes the whole simulation reproducible. Zero means "the
	// default seed, 1" — a deliberate, documented rewrite kept for
	// compatibility (the zero value of Config must remain runnable).
	// The session API's WithSeed rejects zero instead.
	Seed int64
	// FailPrimaryAt, when nonzero, failstops the primary's processor at
	// that virtual time.
	FailPrimaryAt sim.Time
	// DetectTimeout is the backup's failure-detection timeout
	// (default 50 ms simulated).
	DetectTimeout sim.Time
	// DiskReadLatency/DiskWriteLatency override the device service
	// times (defaults: the paper's 24.2 ms / 26 ms).
	DiskReadLatency  sim.Time
	DiskWriteLatency sim.Time
	// Backups is t, the number of backup replicas (default 1): the
	// virtual machine tolerates t failstops. Negative values are
	// rejected.
	Backups int
	// FailBackupAt failstops backup i+1 at FailBackupAt[i] (for
	// multi-failure experiments). A schedule longer than the replica
	// set is rejected.
	FailBackupAt []sim.Time
	// ClientLoad, when non-nil, attaches a simulated client population
	// to the cluster's virtual NIC. The workload must be ServeRequests
	// (the request count derives from it); see WithClientLoad.
	ClientLoad *ClientLoad
}

// Duration re-exports the simulated time unit (nanoseconds).
type Duration = sim.Time

// Convenient durations for Config fields.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Result reports a run.
type Result struct {
	// Time is the virtual completion time.
	Time sim.Time
	// Checksum is the guest workload's self-computed result (equal
	// between bare and replicated runs of the same workload).
	Checksum uint32
	// Console is the environment-visible console transcript.
	Console string
	// Promoted reports whether the backup took over.
	Promoted bool
	// Divergences counts state-digest mismatches detected by the backup
	// (always 0 unless the deterministic-replay machinery is broken).
	Divergences uint64
	// MessagesSent / UncertainSynthesized summarize protocol activity.
	MessagesSent         uint64
	UncertainSynthesized uint64
	// GuestPanic is the guest kernel's panic code (0 = clean run).
	GuestPanic uint32
	// NetReplies is the network service's reply transcript — every
	// frame the guest emitted through the NIC, exactly once, in order
	// (empty without a NIC). Replicated runs match bare runs byte for
	// byte, including across failovers and reintegrations.
	NetReplies string
}

func (c Config) withDefaults() Config {
	if c.EpochLength == 0 {
		c.EpochLength = 4096
	}
	if c.Link == "" {
		c.Link = LinkEthernet10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// linkModel resolves the legacy link name to a LinkModel.
func (c Config) linkModel() (LinkModel, error) {
	switch c.Link {
	case LinkEthernet10:
		return Ethernet10(), nil
	case LinkATM155:
		return ATM155(), nil
	}
	return nil, fmt.Errorf("hft: unknown link %q", c.Link)
}

// validate rejects nonsensical configurations — eagerly, before any
// simulation state exists.
func (c Config) validate() error {
	if c.EpochLength > 385000 {
		return errors.New("hft: epoch length exceeds the HP-UX clock-maintenance bound (385,000)")
	}
	if _, err := c.linkModel(); err != nil {
		return err
	}
	if c.Backups < 0 {
		return fmt.Errorf("hft: negative backup count %d", c.Backups)
	}
	backups := c.Backups
	if backups == 0 {
		backups = 1
	}
	if len(c.FailBackupAt) > backups {
		return fmt.Errorf("hft: FailBackupAt schedules %d backups but the replica set has %d",
			len(c.FailBackupAt), backups)
	}
	for _, at := range c.FailBackupAt {
		if at < 0 {
			return fmt.Errorf("hft: negative backup failure time %v", at)
		}
	}
	if c.FailPrimaryAt < 0 {
		return fmt.Errorf("hft: negative primary failure time %v", c.FailPrimaryAt)
	}
	if c.DetectTimeout < 0 || c.DiskReadLatency < 0 || c.DiskWriteLatency < 0 {
		return errors.New("hft: negative duration in configuration")
	}
	return nil
}

// RunBare executes the workload on a single bare machine — the paper's
// baseline (N in the normalized performance N'/N) — as a one-shot
// session over the Cluster engine.
func RunBare(cfg Config, w Workload) (Result, error) {
	c, err := NewCluster(WithConfig(cfg, w), withBare())
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	return c.Wait(context.Background())
}

// Run executes the workload on the replicated pair (N'). It is the
// one-shot wrapper over a Cluster session: boot, run to completion,
// report.
func Run(cfg Config, w Workload) (Result, error) {
	c, err := NewCluster(WithConfig(cfg, w))
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	return c.Wait(context.Background())
}

// baselineKey identifies a bare-baseline measurement: everything a
// bare run's outcome depends on.
type baselineKey struct {
	seed        int64
	w           Workload
	read, write sim.Time
}

var (
	baselineMu    sync.Mutex
	baselineCache = map[baselineKey]Result{}
)

// bareBaseline returns the bare result for cfg/w, reusing a cached
// measurement when the same workload/scale has been run before
// (repeated NormalizedPerformance calls across epoch lengths, protocols
// or links share one baseline, as the experiment harness always has).
func bareBaseline(cfg Config, w Workload) (Result, error) {
	cfg = cfg.withDefaults()
	key := baselineKey{seed: cfg.Seed, w: w, read: cfg.DiskReadLatency, write: cfg.DiskWriteLatency}
	baselineMu.Lock()
	cached, ok := baselineCache[key]
	baselineMu.Unlock()
	if ok {
		return cached, nil
	}
	bare, err := RunBare(cfg, w)
	if err != nil {
		return Result{}, err
	}
	baselineMu.Lock()
	baselineCache[key] = bare
	baselineMu.Unlock()
	return bare, nil
}

// NormalizedPerformance runs the workload bare and replicated and
// returns N'/N — the paper's figure of merit. The bare baseline is
// cached per (seed, workload, disk latencies): sweeping epoch lengths,
// protocols or links re-runs only the replicated half.
func NormalizedPerformance(cfg Config, w Workload) (float64, error) {
	if err := cfg.withDefaults().validate(); err != nil {
		return 0, err
	}
	bare, err := bareBaseline(cfg, w)
	if err != nil {
		return 0, err
	}
	repl, err := Run(cfg, w)
	if err != nil {
		return 0, err
	}
	if bare.GuestPanic != 0 || repl.GuestPanic != 0 {
		return 0, fmt.Errorf("hft: guest panic (bare %#x, replicated %#x)", bare.GuestPanic, repl.GuestPanic)
	}
	if bare.Checksum != repl.Checksum {
		return 0, fmt.Errorf("hft: replica result %#x differs from bare %#x", repl.Checksum, bare.Checksum)
	}
	if bare.Time == 0 {
		return 0, errors.New("hft: zero baseline time")
	}
	return float64(repl.Time) / float64(bare.Time), nil
}
