// Package hft is a reproduction of "Hypervisor-based Fault-tolerance"
// (Bressoud & Schneider, SOSP 1995) as a self-contained Go library.
//
// The package simulates the paper's prototype: two PA-RISC-like
// processors (PA-lite, interpreted deterministically), each under a
// hypervisor augmented with the paper's replica-coordination protocols
// (rules P1–P7 and the §4.3 revision), sharing a dual-ported SCSI disk
// and connected by a modelled 10 Mbps Ethernet (or 155 Mbps ATM) link.
// An unmodified guest kernel — written in PA-lite assembly — runs the
// paper's workloads either bare (the baseline) or replicated.
//
// # Quick start
//
//	w := hft.CPUIntensive(10000)
//	np, err := hft.NormalizedPerformance(hft.Config{EpochLength: 4096}, w)
//	// np ≈ 6.5: the paper's Figure 2 at 4K-instruction epochs.
//
// Failures are injected with Config.FailPrimaryAt; the backup detects
// the failstop, finishes the failover epoch, synthesizes uncertain
// interrupts for outstanding I/O (rule P7) and takes over without the
// environment noticing anything but a device retry.
package hft

import (
	"errors"
	"fmt"

	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/replication"
	"repro/internal/scsi"
	"repro/internal/sim"
)

// Protocol selects the replica-coordination variant.
type Protocol = replication.Protocol

// Protocol variants (§2 vs §4.3 of the paper).
const (
	// ProtocolOld awaits acknowledgements at every epoch boundary (P2).
	ProtocolOld = replication.ProtocolOld
	// ProtocolNew awaits acknowledgements only before I/O operations.
	ProtocolNew = replication.ProtocolNew
)

// Workload describes a guest benchmark; construct with CPUIntensive,
// DiskRead or DiskWrite.
type Workload = guest.Workload

// CPUIntensive is §4.1's workload: a Dhrystone-like loop of the given
// iteration count (~35 instructions each).
func CPUIntensive(iters uint32) Workload { return guest.CPUIntensive(iters) }

// DiskWrite is §4.2's write benchmark: ops random-block writes of count
// bytes, each awaited before the next. The per-operation computation
// phase and privileged-instruction density are paper-calibrated.
func DiskWrite(ops, count uint32) Workload {
	w := guest.DiskWrite(ops, count)
	w.PreOp, w.PrivOps = 5200, 1030
	return w
}

// DiskRead is §4.2's read benchmark.
func DiskRead(ops, count uint32) Workload {
	w := guest.DiskRead(ops, count)
	w.PreOp, w.PrivOps = 5200, 1030
	return w
}

// Link identifies the hypervisor-to-hypervisor channel technology.
type Link string

// Supported links (Figure 4 compares them).
const (
	LinkEthernet10 Link = "ethernet10" // the prototype's 10 Mbps Ethernet
	LinkATM155     Link = "atm155"     // §4.3's 155 Mbps ATM
)

// Config parameterizes a replicated run.
type Config struct {
	// EpochLength is instructions per epoch (default 4096, the paper's
	// reference point; HP-UX bounds it at 385,000).
	EpochLength uint64
	// Protocol selects Old (§2) or New (§4.3); default Old.
	Protocol Protocol
	// Link selects the channel model; default LinkEthernet10.
	Link Link
	// Seed makes the whole simulation reproducible (default 1).
	Seed int64
	// FailPrimaryAt, when nonzero, failstops the primary's processor at
	// that virtual time.
	FailPrimaryAt sim.Time
	// DetectTimeout is the backup's failure-detection timeout
	// (default 50 ms simulated).
	DetectTimeout sim.Time
	// DiskReadLatency/DiskWriteLatency override the device service
	// times (defaults: the paper's 24.2 ms / 26 ms).
	DiskReadLatency  sim.Time
	DiskWriteLatency sim.Time
	// Backups is t, the number of backup replicas (default 1): the
	// virtual machine tolerates t failstops. The paper builds t = 1 and
	// notes the generalization is straightforward; here it is real.
	Backups int
	// FailBackupAt failstops backup i+1 at FailBackupAt[i] (for
	// multi-failure experiments).
	FailBackupAt []sim.Time
}

// Duration re-exports the simulated time unit (nanoseconds).
type Duration = sim.Time

// Convenient durations for Config fields.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Result reports a run.
type Result struct {
	// Time is the virtual completion time.
	Time sim.Time
	// Checksum is the guest workload's self-computed result (equal
	// between bare and replicated runs of the same workload).
	Checksum uint32
	// Console is the environment-visible console transcript.
	Console string
	// Promoted reports whether the backup took over.
	Promoted bool
	// Divergences counts state-digest mismatches detected by the backup
	// (always 0 unless the deterministic-replay machinery is broken).
	Divergences uint64
	// MessagesSent / UncertainSynthesized summarize protocol activity.
	MessagesSent         uint64
	UncertainSynthesized uint64
	// GuestPanic is the guest kernel's panic code (0 = clean run).
	GuestPanic uint32
}

func (c Config) withDefaults() Config {
	if c.EpochLength == 0 {
		c.EpochLength = 4096
	}
	if c.Link == "" {
		c.Link = LinkEthernet10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) link() (netsim.LinkConfig, error) {
	switch c.Link {
	case LinkEthernet10:
		return netsim.Ethernet10(""), nil
	case LinkATM155:
		return netsim.ATM155(""), nil
	}
	return netsim.LinkConfig{}, fmt.Errorf("hft: unknown link %q", c.Link)
}

func (c Config) disk() scsi.DiskConfig {
	return scsi.DiskConfig{
		ReadLatency:  c.DiskReadLatency,
		WriteLatency: c.DiskWriteLatency,
	}
}

// validate rejects nonsensical configurations.
func (c Config) validate() error {
	if c.EpochLength > 385000 {
		return errors.New("hft: epoch length exceeds the HP-UX clock-maintenance bound (385,000)")
	}
	return nil
}

// RunBare executes the workload on a single bare machine — the paper's
// baseline (N in the normalized performance N'/N).
func RunBare(cfg Config, w Workload) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	r := harness.RunBare(cfg.Seed, w, cfg.disk())
	return Result{
		Time:       r.Time,
		Checksum:   r.Guest.Checksum,
		Console:    r.Console,
		GuestPanic: r.Guest.Panic,
	}, nil
}

// Run executes the workload on the replicated pair (N').
func Run(cfg Config, w Workload) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	link, err := cfg.link()
	if err != nil {
		return Result{}, err
	}
	r := harness.RunReplicated(harness.ReplicatedOptions{
		Seed:          cfg.Seed,
		Workload:      w,
		Disk:          cfg.disk(),
		EpochLength:   cfg.EpochLength,
		Protocol:      cfg.Protocol,
		Link:          link,
		FailPrimaryAt: cfg.FailPrimaryAt,
		DetectTimeout: cfg.DetectTimeout,
		Backups:       cfg.Backups,
		FailBackupAt:  cfg.FailBackupAt,
	})
	return Result{
		Time:                 r.Time,
		Checksum:             r.Guest.Checksum,
		Console:              r.Console,
		Promoted:             r.Promoted,
		Divergences:          r.BackupStats.Divergences,
		MessagesSent:         r.PrimaryStats.MessagesSent,
		UncertainSynthesized: r.BackupStats.UncertainSynth,
		GuestPanic:           r.Guest.Panic,
	}, nil
}

// NormalizedPerformance runs the workload bare and replicated and
// returns N'/N — the paper's figure of merit.
func NormalizedPerformance(cfg Config, w Workload) (float64, error) {
	bare, err := RunBare(cfg, w)
	if err != nil {
		return 0, err
	}
	repl, err := Run(cfg, w)
	if err != nil {
		return 0, err
	}
	if bare.GuestPanic != 0 || repl.GuestPanic != 0 {
		return 0, fmt.Errorf("hft: guest panic (bare %#x, replicated %#x)", bare.GuestPanic, repl.GuestPanic)
	}
	if bare.Checksum != repl.Checksum {
		return 0, fmt.Errorf("hft: replica result %#x differs from bare %#x", repl.Checksum, bare.Checksum)
	}
	if bare.Time == 0 {
		return 0, errors.New("hft: zero baseline time")
	}
	return float64(repl.Time) / float64(bare.Time), nil
}
