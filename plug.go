package hft

import (
	"repro/internal/guest"
	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/scsi"
	"repro/internal/session"
	"repro/internal/sim"
)

// This file holds the Cluster API's extension points: the interfaces a
// caller implements to plug in custom channel models (LinkModel), disk
// storage (DiskBackend) and guest workloads (Program) — replacing what
// used to be closed enums and fixed benchmarks.

// LinkModel describes the hypervisor-to-hypervisor channel technology.
// The paper's two links — the prototype's 10 Mbps Ethernet and §4.3's
// 155 Mbps ATM — are the built-in implementations (Ethernet10, ATM155);
// custom latency/bandwidth/segmentation models plug in by returning
// their own LinkParams.
type LinkModel interface {
	// LinkParams returns the channel's cost-model parameters.
	LinkParams() LinkParams
}

// LinkParams is a concrete channel cost model. It implements LinkModel
// itself, so a custom link can be a plain literal. Zero fields take the
// simulator's messaging-layer defaults (1 KiB MTU, one control frame
// per message, 100 µs controller set-up).
type LinkParams struct {
	// Name identifies the link in diagnostics.
	Name string
	// BitsPerSecond is the serialization bandwidth.
	BitsPerSecond int64
	// Latency is the propagation + interrupt-processing delay added
	// after serialization.
	Latency Duration
	// MTU is the maximum payload bytes per frame; larger messages are
	// segmented.
	MTU int
	// FrameOverhead is per-frame header bytes (counts against bandwidth).
	FrameOverhead int
	// PerMessageFrames is the number of extra control frames per message
	// (the paper's "+1 header").
	PerMessageFrames int
	// SetupTime is per-message controller set-up cost paid by the sender
	// regardless of size.
	SetupTime Duration
}

// LinkParams implements LinkModel.
func (p LinkParams) LinkParams() LinkParams { return p }

// linkConfig converts to the simulator's channel configuration.
func (p LinkParams) linkConfig() netsim.LinkConfig {
	return netsim.LinkConfig{
		Name:             p.Name,
		BitsPerSecond:    p.BitsPerSecond,
		Latency:          sim.Time(p.Latency),
		MTU:              p.MTU,
		FrameOverhead:    p.FrameOverhead,
		PerMessageFrames: p.PerMessageFrames,
		SetupTime:        sim.Time(p.SetupTime),
	}
}

// paramsFromConfig converts a simulator link configuration to public
// parameters.
func paramsFromConfig(c netsim.LinkConfig) LinkParams {
	return LinkParams{
		Name:             c.Name,
		BitsPerSecond:    c.BitsPerSecond,
		Latency:          Duration(c.Latency),
		MTU:              c.MTU,
		FrameOverhead:    c.FrameOverhead,
		PerMessageFrames: c.PerMessageFrames,
		SetupTime:        Duration(c.SetupTime),
	}
}

// Ethernet10 returns the prototype's 10 Mbps Ethernet link model.
func Ethernet10() LinkModel { return paramsFromConfig(netsim.Ethernet10("ethernet10")) }

// ATM155 returns §4.3's 155 Mbps ATM link model.
func ATM155() LinkModel { return paramsFromConfig(netsim.ATM155("atm155")) }

// LinkQuality is a live adjustment to the cluster's links — mid-run
// degradation (or repair). Zero fields leave the corresponding
// parameter unchanged.
type LinkQuality struct {
	// BitsPerSecond replaces the serialization bandwidth.
	BitsPerSecond int64
	// Latency replaces the propagation delay.
	Latency Duration
	// MTU replaces the segmentation threshold.
	MTU int
	// DropNext marks the next N sends on each link direction for loss.
	DropNext int
}

// DiskBackend supplies the storage behind the shared disk's blocks:
// Block returns the backing bytes for block b (length >= the disk's
// block size), faulting it in as needed; the device reads and writes
// the returned slice in place. The default backend is in-memory,
// lazily allocated and zero-filled. Implementations must be
// deterministic — the disk is part of the replicated environment.
type DiskBackend interface {
	Block(b uint32) []byte
}

// GuestMemory is a Program's window onto guest physical memory.
type GuestMemory interface {
	// Load32 reads an aligned word of guest physical memory.
	Load32(pa uint32) uint32
	// Store32 writes an aligned word of guest physical memory.
	Store32(pa uint32, v uint32)
}

// ProgramResult is a Program's guest-visible outcome.
type ProgramResult struct {
	// Checksum is the workload's self-computed result; it must be equal
	// across bare and replicated runs (determinism check).
	Checksum uint32
	// Panic is the guest's panic code (0 = clean run).
	Panic uint32
}

// Program supplies a guest boot image, boot-time configuration, and
// result extraction — the plug point for workloads beyond the paper's
// three benchmarks. A Program must be deterministic and must configure
// every replica identically; the replication layer takes care of the
// rest (that is the paper's point).
type Program interface {
	// Image returns the guest memory image and entry point.
	Image() (origin uint32, words []uint32, entry uint32)
	// Setup writes boot-time parameters into guest memory after the
	// image is loaded, once per replica.
	Setup(mem GuestMemory)
	// Result extracts the outcome after the guest halts.
	Result(mem GuestMemory) ProgramResult
}

// machineMemory adapts a simulated machine to GuestMemory.
type machineMemory struct{ m *machine.Machine }

func (mm machineMemory) Load32(pa uint32) uint32     { return mm.m.LoadPhys32(pa) }
func (mm machineMemory) Store32(pa uint32, v uint32) { mm.m.StorePhys32(pa, v) }

// programAdapter bridges a public Program into the session engine.
type programAdapter struct{ p Program }

func (a programAdapter) Image() (uint32, []uint32, uint32) { return a.p.Image() }
func (a programAdapter) Setup(m *machine.Machine)          { a.p.Setup(machineMemory{m}) }
func (a programAdapter) Result(m *machine.Machine) guest.Result {
	r := a.p.Result(machineMemory{m})
	return guest.Result{Checksum: r.Checksum, Panic: r.Panic}
}

// sessionProgram resolves the configured program: a custom Program if
// one was plugged in, else the built-in guest kernel + workload.
func (o *clusterOptions) sessionProgram() session.Program {
	if o.program != nil {
		return programAdapter{p: o.program}
	}
	return session.WorkloadProgram(o.workload)
}

// scsiBackend adapts a public DiskBackend to the device layer (the
// method sets are identical; the named types differ).
func scsiBackend(b DiskBackend) scsi.Backend { return scsi.Backend(b) }
