package hft

// Public-surface tests of the output-commit latency engine
// (WithOutputCommit): option validation, checkpointing a session with
// epochs still in the acknowledgment window, and the observation
// surface (EventOutputCommitted, ServiceLatencies commit quantiles).

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// ocCluster builds a replicated service session with the engine on.
func ocCluster(t *testing.T, oc OutputCommit, extra ...Option) *Cluster {
	t.Helper()
	opts := append([]Option{
		WithWorkload(ServeRequests(24, 50)),
		WithClientLoad(ClientLoad{Clients: 8}),
		WithEpochLength(1024),
		WithOutputCommit(oc),
	}, extra...)
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWithOutputCommitValidation pins the option's eager validation.
func TestWithOutputCommitValidation(t *testing.T) {
	if _, err := NewCluster(
		WithWorkload(CPUIntensive(100)),
		WithOutputCommit(OutputCommit{Window: -1}),
	); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative window: %v", err)
	}
	if _, err := NewCluster(
		WithWorkload(CPUIntensive(100)),
		WithOutputCommit(OutputCommit{Window: 65}),
	); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("oversized window: %v", err)
	}
	c, err := NewCluster(
		WithWorkload(CPUIntensive(100)),
		WithOutputCommit(OutputCommit{}),
	)
	if err != nil {
		t.Fatalf("zero-value OutputCommit should default, got %v", err)
	}
	c.Close()
}

// TestOutputCommitSaveRestoreMidWindow checkpoints the session at an
// arbitrary virtual time — epochs may be sent but unacknowledged, their
// deferred output retained — and pins the restored session's remaining
// execution bit-identical to the original's. The commit window and the
// epoch/time-tagged suppressed-output entries must round-trip through
// the snapshot codec for the verification pass to hold.
func TestOutputCommitSaveRestoreMidWindow(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		mk := func() *Cluster {
			return ocCluster(t, OutputCommit{Window: 8, Adaptive: adaptive})
		}
		orig := mk()
		defer orig.Close()
		if _, err := orig.RunFor(1300 * Microsecond); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("adaptive=%v save: %v", adaptive, err)
		}
		restored, err := Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("adaptive=%v restore: %v", adaptive, err)
		}
		defer restored.Close()
		finishAndCompare(t, "oc-restored-vs-original", orig, restored)
	}
}

// TestOutputCommitObservation drives the engine to completion under a
// failover and checks the public observation surface: output-committed
// events stream with sane payloads, and the client-side latency report
// carries the commit quantiles.
func TestOutputCommitObservation(t *testing.T) {
	c := ocCluster(t, OutputCommit{Window: 4, Adaptive: true},
		WithFailPrimaryAt(2*Millisecond),
		WithDetectTimeout(2*Millisecond),
	)
	defer c.Close()
	events := c.Events()
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatal("no promotion")
	}
	c.Close()

	var commits, withOutput int
	for ev := range events {
		if ev.Kind != EventOutputCommitted {
			continue
		}
		commits++
		if ev.Outputs > 0 {
			withOutput++
			if ev.CommitLatency <= 0 {
				t.Fatalf("released %d outputs with non-positive latency: %v", ev.Outputs, ev)
			}
		}
		if ev.Occupancy < 0 || ev.Occupancy >= 4 {
			t.Fatalf("occupancy %d outside window: %v", ev.Occupancy, ev)
		}
		if !strings.Contains(ev.String(), "output committed") {
			t.Fatalf("String(): %q", ev.String())
		}
	}
	if commits == 0 || withOutput == 0 {
		t.Fatalf("events: %d commits, %d with output", commits, withOutput)
	}

	sl, ok := c.ServiceLatencies()
	if !ok {
		t.Fatal("no service latencies")
	}
	if sl.CommitP50 <= 0 || sl.CommitP99 < sl.CommitP50 {
		t.Fatalf("commit quantiles: p50=%v p99=%v", sl.CommitP50, sl.CommitP99)
	}
}
