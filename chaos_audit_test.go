package hft

// Audit tests for the perturbation surface the chaos campaign drives:
// post-completion behavior of every live mutation entry point, journal
// hygiene for no-op perturbations, and a Save taken immediately after
// an AddBackup quiesce (the "AddBackup racing a Save" journal-replay
// edge).

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func runToCompletion(t *testing.T, c *Cluster) Result {
	t.Helper()
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPerturbationsAfterDone pins the public contract: once Done
// reports true, FailBackup, SetLinkQuality and AddBackup return
// ErrCompleted, and FailPrimary is a no-op that is NOT journaled (a
// subsequent Save must replay without any phantom perturbation).
func TestPerturbationsAfterDone(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(2000)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := runToCompletion(t, c)
	if !c.Done() {
		t.Fatal("workload did not complete")
	}

	if err := c.FailBackup(1); !errors.Is(err, ErrCompleted) {
		t.Errorf("FailBackup after Done: %v, want ErrCompleted", err)
	}
	if err := c.SetLinkQuality(LinkQuality{BitsPerSecond: 1_000_000}); !errors.Is(err, ErrCompleted) {
		t.Errorf("SetLinkQuality after Done: %v, want ErrCompleted", err)
	}
	if _, err := c.AddBackup(); !errors.Is(err, ErrCompleted) {
		t.Errorf("AddBackup after Done: %v, want ErrCompleted", err)
	}
	c.FailPrimary() // documented no-op; must not journal

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore after post-Done perturbation attempts: %v", err)
	}
	defer restored.Close()
	got, err := restored.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("restored result drifted after post-Done no-ops: %+v vs %+v", got, want)
	}
}

// TestDuplicateFailstopNotJournaled: failing an already-failed backup
// (or primary) must not append journal entries — a checkpoint taken
// afterwards replays cleanly and identically.
func TestDuplicateFailstopNotJournaled(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(20000)), WithBackups(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RunUntil(func(s Snapshot) bool { return s.Commits >= 4 }); err != nil {
		t.Fatal(err)
	}
	if err := c.FailBackup(2); err != nil {
		t.Fatal(err)
	}
	// Duplicates: same backup again, and a dead-primary re-fail later.
	if err := c.FailBackup(2); err != nil {
		t.Errorf("re-failing dead backup 2: %v", err)
	}
	c.FailPrimary()
	c.FailPrimary() // second failstop finds a dead primary

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes())) // verify=on replays the journal
	if err != nil {
		t.Fatalf("journal with duplicate failstops did not replay: %v", err)
	}
	defer restored.Close()

	want := runToCompletion(t, c)
	got := runToCompletion(t, restored)
	if got != want {
		t.Errorf("restored run diverged: %+v vs %+v", got, want)
	}
	if !want.Promoted {
		t.Error("primary failstop did not promote the surviving backup")
	}
}

// TestSaveImmediatelyAfterAddBackup is the "AddBackup racing a Save"
// edge: AddBackup quiesces at a commit boundary with a state transfer
// in flight, and Save captures exactly that position. Restore must
// replay the reintegration (journal) and land on the identical state —
// transfer and all — proven by the restored session finishing with the
// same result.
func TestSaveImmediatelyAfterAddBackup(t *testing.T) {
	c, err := NewCluster(WithWorkload(DiskWrite(3, 2048)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RunUntil(func(s Snapshot) bool { return s.Commits >= 3 }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBackup(); err != nil {
		t.Fatal(err)
	}
	// No time advances between the reintegration and the capture.
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("restore of save-at-reintegration-boundary: %v", err)
	}
	defer restored.Close()
	if restored.Snapshot().Nodes != c.Snapshot().Nodes {
		t.Errorf("restored node count %d, original %d", restored.Snapshot().Nodes, c.Snapshot().Nodes)
	}

	want := runToCompletion(t, c)
	got := runToCompletion(t, restored)
	if got != want {
		t.Errorf("restored run diverged: %+v vs %+v", got, want)
	}
}

// TestSnapshotCommitsMonotonic: the public Snapshot's Commits field —
// the chaos coordinate — is cumulative and survives a failover (unlike
// Epochs, which resets to the promoted backup's counter).
func TestSnapshotCommitsMonotonic(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(30000)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.RunUntil(func(s Snapshot) bool { return s.Commits >= 5 })
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commits < 5 {
		t.Fatalf("RunUntil stopped at commit %d", snap.Commits)
	}
	c.FailPrimary()
	pre := snap.Commits
	snap, err = c.RunUntil(func(s Snapshot) bool { return s.Commits >= pre+3 })
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commits < pre+3 {
		t.Errorf("Commits did not continue across failover: %d then %d", pre, snap.Commits)
	}
	if !snap.Promoted {
		t.Error("failover did not promote")
	}
	runToCompletion(t, c)
}
