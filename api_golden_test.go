package hft

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// The public surface of this package is contract: the harness, the
// examples and downstream users all program against it. This test
// renders every exported declaration (functions, methods, types with
// their exported fields, constants and variables) into a canonical
// dump and compares it against testdata/api.golden, so a PR cannot
// silently grow, shrink or reshape the API. After an intentional
// change, regenerate with:
//
//	go test -run TestAPISurfaceGolden -update-api .

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.golden from the current surface")

// renderNode prints an AST node with canonical formatting.
func renderNode(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		panic(err)
	}
	// Collapse whitespace runs so gofmt drift can't churn the golden.
	return strings.Join(strings.Fields(buf.String()), " ")
}

// exposedType strips a struct type down to its exported fields (the
// public contract); other type expressions pass through.
func exposedType(expr ast.Expr) ast.Expr {
	st, ok := expr.(*ast.StructType)
	if !ok {
		return expr
	}
	out := &ast.StructType{Fields: &ast.FieldList{}}
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, ast.NewIdent(n.Name))
			}
		}
		if len(names) == 0 && len(f.Names) > 0 {
			continue
		}
		out.Fields.List = append(out.Fields.List, &ast.Field{Names: names, Type: f.Type})
	}
	return out
}

// apiSurface renders the package's exported declarations, one per line,
// sorted.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["hft"]
	if !ok {
		t.Fatalf("package hft not found (got %v)", pkgs)
	}
	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					// Methods only count on exported receiver types.
					recv := renderNode(fset, d.Recv.List[0].Type)
					base := strings.TrimLeft(recv, "*")
					if !ast.IsExported(base) {
						continue
					}
					lines = append(lines, fmt.Sprintf("func (%s) %s%s",
						recv, d.Name.Name, strings.TrimPrefix(renderNode(fset, d.Type), "func")))
					continue
				}
				lines = append(lines, fmt.Sprintf("func %s%s",
					d.Name.Name, strings.TrimPrefix(renderNode(fset, d.Type), "func")))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						assign := ""
						if s.Assign != token.NoPos {
							assign = "= "
						}
						lines = append(lines, fmt.Sprintf("type %s %s%s",
							s.Name.Name, assign, renderNode(fset, exposedType(s.Type))))
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for i, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							line := fmt.Sprintf("%s %s", kw, n.Name)
							if s.Type != nil {
								line += " " + renderNode(fset, s.Type)
							}
							if i < len(s.Values) {
								line += " = " + renderNode(fset, s.Values[i])
							}
							lines = append(lines, line)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestAPISurfaceGolden(t *testing.T) {
	got := apiSurface(t)
	const path = "testdata/api.golden"
	if *updateAPI {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-api): %v", path, err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	seen := map[string]bool{}
	for _, l := range wantLines {
		seen[l] = true
	}
	for _, l := range gotLines {
		if !seen[l] {
			t.Errorf("surface gained: %s", l)
		}
	}
	now := map[string]bool{}
	for _, l := range gotLines {
		now[l] = true
	}
	for _, l := range wantLines {
		if !now[l] {
			t.Errorf("surface lost: %s", l)
		}
	}
	if !t.Failed() {
		t.Error("api surface reordered relative to golden")
	}
	t.Log("intentional change? regenerate with: go test -run TestAPISurfaceGolden -update-api .")
}
