package hft

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guest"
)

// TestClusterLiveFailover drives a session through a live (unscheduled)
// primary failstop and asserts the backup finishes the workload with
// the bare machine's result.
func TestClusterLiveFailover(t *testing.T) {
	w := DiskWrite(3, 4096)
	cfg := Config{EpochLength: 4096, DiskReadLatency: 500 * Microsecond, DiskWriteLatency: 600 * Microsecond}
	bare, err := RunBare(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(WithConfig(cfg, w))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.RunFor(5 * Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Done {
		t.Fatal("workload finished before the failure could be injected")
	}
	c.FailPrimary()
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatal("backup did not promote after live failstop")
	}
	if res.GuestPanic != 0 {
		t.Fatalf("guest panic %#x", res.GuestPanic)
	}
	if res.Checksum != bare.Checksum {
		t.Errorf("failover checksum %#x != bare %#x", res.Checksum, bare.Checksum)
	}
}

// TestClusterRunUntilPredicate pauses a session at an epoch-boundary
// predicate and resumes it to completion.
func TestClusterRunUntilPredicate(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(8000)), WithEpochLength(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.RunUntil(func(s Snapshot) bool { return s.Epochs >= 5 })
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epochs < 5 {
		t.Fatalf("predicate stop at %d epochs, want >= 5", snap.Epochs)
	}
	if snap.Done {
		t.Fatal("workload should not have completed by epoch 5")
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestPanic != 0 || res.Checksum == 0 {
		t.Fatalf("bad terminal result after predicate pause: %+v", res)
	}
}

// TestClusterWaitCancellation verifies context cancellation pauses the
// session at an epoch boundary and leaves it resumable.
func TestClusterWaitCancellation(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(8000)), WithEpochLength(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancellation observed at the first epoch boundary
	if _, err := c.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait(cancelled ctx) = %v, want context.Canceled", err)
	}
	if c.Done() {
		t.Fatal("session completed despite cancellation")
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GuestPanic != 0 {
		t.Fatalf("guest panic %#x after resume", res.GuestPanic)
	}
}

// TestClusterLinkDegradation degrades the link mid-run and asserts the
// run still completes correctly — and slower than an unperturbed one.
func TestClusterLinkDegradation(t *testing.T) {
	run := func(degrade bool) Result {
		c, err := NewCluster(WithWorkload(CPUIntensive(6000)), WithEpochLength(1024))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RunFor(5 * Millisecond); err != nil {
			t.Fatal(err)
		}
		if degrade {
			if err := c.SetLinkQuality(LinkQuality{BitsPerSecond: 1_000_000, Latency: 500 * Microsecond}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run(false)
	degraded := run(true)
	if degraded.Checksum != healthy.Checksum {
		t.Errorf("degraded link changed the result: %#x != %#x", degraded.Checksum, healthy.Checksum)
	}
	if degraded.Time <= healthy.Time {
		t.Errorf("10x slower link did not slow the run: %v <= %v", degraded.Time, healthy.Time)
	}
	if degraded.Promoted || healthy.Promoted {
		t.Error("degradation must not trigger failover")
	}
}

// TestClusterEvents exercises the Events subscription path with
// concurrent consumers (the go test -race target): two subscribers
// drain the stream from their own goroutines while the session runs
// through a live failover.
func TestClusterEvents(t *testing.T) {
	c, err := NewCluster(
		WithWorkload(DiskWrite(3, 4096)),
		WithDiskLatency(500*Microsecond, 600*Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}

	type tally struct {
		epochs, promotions, failstops, diskOps, completed int
	}
	consume := func(ch <-chan Event, out *tally, wg *sync.WaitGroup) {
		defer wg.Done()
		for ev := range ch {
			switch ev.Kind {
			case EventEpochCommitted:
				out.epochs++
			case EventPromoted:
				out.promotions++
				if ev.Node != 1 {
					t.Errorf("promotion from node %d, want 1", ev.Node)
				}
			case EventFailstop:
				out.failstops++
			case EventDiskOp:
				out.diskOps++
			case EventCompleted:
				out.completed++
			}
			if ev.String() == "" {
				t.Error("empty event rendering")
			}
		}
	}

	var a, b tally
	var wg sync.WaitGroup
	wg.Add(2)
	go consume(c.Events(), &a, &wg)
	go consume(c.Events(), &b, &wg)

	if _, err := c.RunFor(5 * Millisecond); err != nil {
		t.Fatal(err)
	}
	c.FailPrimary()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close() // closes the event channels; consumers drain and exit
	wg.Wait()

	for name, got := range map[string]tally{"a": a, "b": b} {
		if got.epochs == 0 {
			t.Errorf("subscriber %s saw no epoch commits", name)
		}
		if got.promotions != 1 {
			t.Errorf("subscriber %s saw %d promotions, want 1", name, got.promotions)
		}
		if got.failstops != 1 {
			t.Errorf("subscriber %s saw %d failstops, want 1", name, got.failstops)
		}
		if got.diskOps == 0 {
			t.Errorf("subscriber %s saw no disk ops", name)
		}
		if got.completed != 1 {
			t.Errorf("subscriber %s saw %d completions, want 1", name, got.completed)
		}
	}
	if a != b {
		t.Errorf("subscribers diverged: %+v vs %+v", a, b)
	}
}

// TestClusterAbandonedSubscriber verifies an Events channel that is
// never read does not leak its pump goroutine past Close: the backlog
// (well over the channel buffer) is forfeited within the teardown
// grace period.
func TestClusterAbandonedSubscriber(t *testing.T) {
	before := runtime.NumGoroutine()
	c, err := NewCluster(
		WithWorkload(CPUIntensive(8000)),
		WithEpochLength(1024),
	)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Events() // abandoned: never read
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot(); got.Epochs < 65 {
		// The scenario must overflow the channel buffer to be a real
		// regression test for the blocked-send path.
		t.Fatalf("only %d epochs — backlog did not exceed the channel buffer", got.Epochs)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked past Close: %d > %d", n, before)
	}
}

// TestClusterSnapshotMidRun verifies observation mid-run, before and
// after completion.
func TestClusterSnapshotMidRun(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(6000)), WithEpochLength(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if s := c.Snapshot(); s.Booted {
		t.Error("cluster booted before first advancement")
	}
	mid, err := c.RunFor(10 * Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.Booted || mid.Done || mid.Epochs == 0 || mid.MessagesSent == 0 {
		t.Errorf("implausible mid-run snapshot: %+v", mid)
	}
	if mid.Now != 10*Millisecond {
		t.Errorf("snapshot time %v, want 10ms", mid.Now)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The session ends when its last process exits — at or shortly
	// after the workload's completion time (the backup winds down).
	end := c.Snapshot()
	if !end.Done || !end.Halted || end.Now < res.Time || end.Now > res.Time+Second {
		t.Errorf("terminal snapshot inconsistent with result: %+v vs time %v", end, res.Time)
	}
	if !strings.Contains(end.Console, "C") {
		t.Errorf("console transcript missing: %q", end.Console)
	}
}

// stripeBackend is a custom DiskBackend serving deterministic patterned
// blocks (never explicitly zero).
type stripeBackend struct {
	blocks map[uint32][]byte
}

func (s *stripeBackend) Block(b uint32) []byte {
	if s.blocks == nil {
		s.blocks = map[uint32][]byte{}
	}
	if s.blocks[b] == nil {
		buf := make([]byte, 8192)
		for i := range buf {
			buf[i] = byte(b) ^ byte(i)
		}
		s.blocks[b] = buf
	}
	return s.blocks[b]
}

// TestClusterDiskBackend plugs a custom storage backend in and asserts
// (a) it changes what the guest reads, and (b) bare and replicated
// sessions over the same backend still agree — the replication layer is
// backend-agnostic.
func TestClusterDiskBackend(t *testing.T) {
	w := DiskRead(2, 2048)
	lat := []Option{WithDiskLatency(300*Microsecond, 300*Microsecond), WithWorkload(w)}
	run := func(extra ...Option) Result {
		c, err := NewCluster(append(append([]Option{}, lat...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := c.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	striped := run(WithDiskBackend(&stripeBackend{}))
	if striped.Checksum == plain.Checksum {
		t.Error("custom backend did not change the read data")
	}
	stripedBare := run(WithDiskBackend(&stripeBackend{}), withBare())
	if stripedBare.Checksum != striped.Checksum {
		t.Errorf("replicated result over custom backend %#x != bare %#x",
			striped.Checksum, stripedBare.Checksum)
	}
}

// abiProgram is a custom Program: it boots the stock guest image but
// performs its own ABI setup and result extraction through the public
// GuestMemory window — the plug point a from-scratch guest would use.
type abiProgram struct{ iters uint32 }

func (p abiProgram) Image() (uint32, []uint32, uint32) {
	img := guest.Program()
	return img.Origin, img.Words, 0
}

func (p abiProgram) Setup(mem GuestMemory) {
	mem.Store32(guest.ABIKind, guest.WorkloadCPU)
	mem.Store32(guest.ABIIters, p.iters)
}

func (p abiProgram) Result(mem GuestMemory) ProgramResult {
	return ProgramResult{
		Checksum: mem.Load32(guest.ABIResult),
		Panic:    mem.Load32(guest.ABIPanic),
	}
}

// TestClusterCustomProgram runs a user-supplied Program and checks it
// matches the equivalent built-in workload run.
func TestClusterCustomProgram(t *testing.T) {
	viaProgram, err := NewCluster(WithProgram(abiProgram{iters: 3000}))
	if err != nil {
		t.Fatal(err)
	}
	defer viaProgram.Close()
	got, err := viaProgram.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Config{}, CPUIntensive(3000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum != want.Checksum || got.Time != want.Time {
		t.Errorf("custom program drifted from built-in workload: %#x/%v vs %#x/%v",
			got.Checksum, got.Time, want.Checksum, want.Time)
	}
}

// TestNewClusterValidation covers the eager option-time rejections.
func TestNewClusterValidation(t *testing.T) {
	work := WithWorkload(CPUIntensive(100))
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"no workload", nil, "no guest workload"},
		{"workload and program", []Option{work, WithProgram(abiProgram{iters: 1})}, "mutually exclusive"},
		{"zero seed", []Option{work, WithSeed(0)}, "zero seed"},
		{"zero epoch", []Option{work, WithEpochLength(0)}, "zero epoch"},
		{"oversized epoch", []Option{work, WithEpochLength(500000)}, "385,000"},
		{"negative backups", []Option{work, WithBackups(-1)}, "backups must be >= 1"},
		{"zero backups", []Option{work, WithBackups(0)}, "backups must be >= 1"},
		{"failure beyond replica set", []Option{work, WithBackups(1), WithFailBackupAt(2, Millisecond)}, "exceeds the replica set"},
		{"bad backup index", []Option{work, WithFailBackupAt(0, Millisecond)}, "numbered from 1"},
		{"nil link", []Option{work, WithLink(nil)}, "nil LinkModel"},
		{"bad link bandwidth", []Option{work, WithLink(LinkParams{Name: "dead"})}, "non-positive bandwidth"},
		{"negative detect timeout", []Option{work, WithDetectTimeout(-1)}, "non-positive detect timeout"},
		{"negative disk latency", []Option{work, WithDiskLatency(-1, 0)}, "negative disk latency"},
		{"nil backend", []Option{work, WithDiskBackend(nil)}, "nil DiskBackend"},
		{"nil program", []Option{WithProgram(nil)}, "nil Program"},
		{"nil option", []Option{work, nil}, "nil Option"},
		{"unknown config link", []Option{WithConfig(Config{Link: "token-ring"}, CPUIntensive(100))}, "unknown link"},
		{"config negative backups", []Option{WithConfig(Config{Backups: -2}, CPUIntensive(100))}, "negative backup count"},
		{"config oversubscribed failures", []Option{WithConfig(Config{FailBackupAt: []Duration{1, 2}}, CPUIntensive(100))}, "FailBackupAt schedules 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster(tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("NewCluster(%s) error = %v, want containing %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestConfigValidationEager covers the legacy Config rejections that
// used to be silent acceptances, and the documented Seed rewrite.
func TestConfigValidationEager(t *testing.T) {
	w := CPUIntensive(100)
	if _, err := Run(Config{Backups: -1}, w); err == nil || !strings.Contains(err.Error(), "negative backup count") {
		t.Errorf("negative Backups accepted: %v", err)
	}
	if _, err := Run(Config{FailBackupAt: []Duration{1, 2, 3}}, w); err == nil || !strings.Contains(err.Error(), "replica set has 1") {
		t.Errorf("oversubscribed FailBackupAt accepted: %v", err)
	}
	if _, err := RunBare(Config{Link: "token-ring"}, w); err == nil || !strings.Contains(err.Error(), "unknown link") {
		t.Errorf("unknown link accepted by RunBare: %v", err)
	}
	// Seed: 0 is documented to mean the default seed (1).
	zero, err := Run(Config{EpochLength: 1024}, w)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(Config{EpochLength: 1024, Seed: 1}, w)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Time != one.Time || zero.Checksum != one.Checksum {
		t.Errorf("Seed 0 is not the documented alias of seed 1: %v/%v", zero.Time, one.Time)
	}
}

// TestNormalizedPerformanceBaselineCache verifies repeated calls with
// the same workload/scale reuse one bare baseline.
func TestNormalizedPerformanceBaselineCache(t *testing.T) {
	w := CPUIntensive(2500)
	cfg := Config{EpochLength: 2048, Seed: 77}
	key := baselineKey{seed: 77, w: w}
	baselineMu.Lock()
	delete(baselineCache, key)
	baselineMu.Unlock()

	first, err := NormalizedPerformance(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	baselineMu.Lock()
	cached, ok := baselineCache[key]
	baselineMu.Unlock()
	if !ok {
		t.Fatal("baseline not cached after first call")
	}
	// A different epoch length shares the same baseline (the bare run
	// does not depend on it); the cache entry must be reused, not
	// duplicated under another key.
	cfg.EpochLength = 4096
	second, err := NormalizedPerformance(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	baselineMu.Lock()
	after, ok2 := baselineCache[key]
	baselineMu.Unlock()
	if !ok2 || after != cached {
		t.Error("baseline cache entry churned across calls")
	}
	if first == second {
		t.Errorf("different epoch lengths produced identical np %v (suspicious)", first)
	}
}

// TestClusterReuseAfterClose verifies post-Close behavior is errors,
// not corruption.
func TestClusterReuseAfterClose(t *testing.T) {
	c, err := NewCluster(WithWorkload(CPUIntensive(500)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.RunFor(Millisecond); err != ErrClosed {
		t.Errorf("RunFor after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Wait(context.Background()); err != ErrClosed {
		t.Errorf("Wait after Close = %v, want ErrClosed", err)
	}
	// The terminal result remains readable.
	if res, err := c.Result(); err != nil || res.Checksum == 0 {
		t.Errorf("Result after Close = %+v, %v", res, err)
	}
	// A subscription opened after Close is an immediately-closed channel.
	if _, ok := <-c.Events(); ok {
		t.Error("Events after Close delivered a value")
	}
}
