// Command compatgolden emits the back-compat golden file consumed by
// the root package's differential suite (compat_differential_test.go):
// old-API Run/RunBare/NormalizedPerformance results across both
// protocols, both links, and a failover run. The goldens were first
// generated on the pre-Cluster one-shot implementation; the session
// redesign must reproduce them byte for byte.
//
//	go run ./tools/compatgolden > testdata/compat_golden.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	hft "repro"
)

// GoldenCase is one recorded configuration.
type GoldenCase struct {
	Name string `json:"name"`

	// Inputs.
	Workload string  `json:"workload"` // cpu / write / read
	Iters    uint32  `json:"iters,omitempty"`
	Ops      uint32  `json:"ops,omitempty"`
	Count    uint32  `json:"count,omitempty"`
	Epoch    uint64  `json:"epoch"`
	Protocol string  `json:"protocol"`
	Link     string  `json:"link"`
	Seed     int64   `json:"seed,omitempty"`
	FailAtNS int64   `json:"fail_at_ns,omitempty"`
	ReadLat  int64   `json:"read_lat_ns,omitempty"`
	WriteLat int64   `json:"write_lat_ns,omitempty"`
	Backups  int     `json:"backups,omitempty"`
	FailBkNS []int64 `json:"fail_backup_ns,omitempty"`

	// Recorded outputs.
	BareTimeNS   int64  `json:"bare_time_ns"`
	BareChecksum uint32 `json:"bare_checksum"`
	BareConsole  string `json:"bare_console"`
	ReplTimeNS   int64  `json:"repl_time_ns"`
	ReplChecksum uint32 `json:"repl_checksum"`
	ReplConsole  string `json:"repl_console"`
	Promoted     bool   `json:"promoted"`
	Divergences  uint64 `json:"divergences"`
	Messages     uint64 `json:"messages"`
	Uncertain    uint64 `json:"uncertain"`
	NP           string `json:"np"` // %.17g of NormalizedPerformance
}

// Cases returns the golden configuration matrix (shared with the test).
func Cases() []GoldenCase {
	return []GoldenCase{
		{Name: "cpu-old-eth", Workload: "cpu", Iters: 4000, Epoch: 2048, Protocol: "old", Link: "ethernet10"},
		{Name: "cpu-new-eth", Workload: "cpu", Iters: 4000, Epoch: 2048, Protocol: "new", Link: "ethernet10"},
		{Name: "cpu-old-atm", Workload: "cpu", Iters: 4000, Epoch: 4096, Protocol: "old", Link: "atm155"},
		{Name: "cpu-new-atm", Workload: "cpu", Iters: 4000, Epoch: 4096, Protocol: "new", Link: "atm155"},
		{Name: "write-old-eth", Workload: "write", Ops: 3, Count: 4096, Epoch: 4096, Protocol: "old", Link: "ethernet10",
			ReadLat: 500_000, WriteLat: 600_000},
		{Name: "write-new-atm", Workload: "write", Ops: 3, Count: 4096, Epoch: 4096, Protocol: "new", Link: "atm155",
			ReadLat: 500_000, WriteLat: 600_000},
		{Name: "read-old-eth-seed99", Workload: "read", Ops: 2, Count: 2048, Epoch: 4096, Protocol: "old", Link: "ethernet10",
			Seed: 99, ReadLat: 300_000, WriteLat: 300_000},
		{Name: "failover-write-old-eth", Workload: "write", Ops: 3, Count: 4096, Epoch: 4096, Protocol: "old", Link: "ethernet10",
			FailAtNS: 5_000_000, ReadLat: 500_000, WriteLat: 600_000},
		{Name: "double-failure-write-old-eth", Workload: "write", Ops: 3, Count: 2048, Epoch: 4096, Protocol: "old", Link: "ethernet10",
			Backups: 2, FailAtNS: 2_000_000, FailBkNS: []int64{120_000_000},
			ReadLat: 400_000, WriteLat: 500_000},
	}
}

// Config materializes the hft.Config for a case.
func (g GoldenCase) Config() hft.Config {
	cfg := hft.Config{
		EpochLength:      g.Epoch,
		Link:             hft.Link(g.Link),
		Seed:             g.Seed,
		FailPrimaryAt:    hft.Duration(g.FailAtNS),
		DiskReadLatency:  hft.Duration(g.ReadLat),
		DiskWriteLatency: hft.Duration(g.WriteLat),
		Backups:          g.Backups,
	}
	if g.Protocol == "new" {
		cfg.Protocol = hft.ProtocolNew
	}
	for _, ns := range g.FailBkNS {
		cfg.FailBackupAt = append(cfg.FailBackupAt, hft.Duration(ns))
	}
	return cfg
}

// WorkloadValue materializes the hft.Workload for a case.
func (g GoldenCase) WorkloadValue() hft.Workload {
	switch g.Workload {
	case "cpu":
		return hft.CPUIntensive(g.Iters)
	case "write":
		return hft.DiskWrite(g.Ops, g.Count)
	case "read":
		return hft.DiskRead(g.Ops, g.Count)
	}
	panic("unknown workload " + g.Workload)
}

func main() {
	cases := Cases()
	for i := range cases {
		g := &cases[i]
		cfg, w := g.Config(), g.WorkloadValue()
		bare, err := hft.RunBare(cfg, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compatgolden: %s: bare: %v\n", g.Name, err)
			os.Exit(1)
		}
		repl, err := hft.Run(cfg, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compatgolden: %s: run: %v\n", g.Name, err)
			os.Exit(1)
		}
		np, err := hft.NormalizedPerformance(cfg, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compatgolden: %s: np: %v\n", g.Name, err)
			os.Exit(1)
		}
		g.BareTimeNS = int64(bare.Time)
		g.BareChecksum = bare.Checksum
		g.BareConsole = bare.Console
		g.ReplTimeNS = int64(repl.Time)
		g.ReplChecksum = repl.Checksum
		g.ReplConsole = repl.Console
		g.Promoted = repl.Promoted
		g.Divergences = repl.Divergences
		g.Messages = repl.MessagesSent
		g.Uncertain = repl.UncertainSynthesized
		g.NP = fmt.Sprintf("%.17g", np)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cases); err != nil {
		fmt.Fprintf(os.Stderr, "compatgolden: %v\n", err)
		os.Exit(1)
	}
}
