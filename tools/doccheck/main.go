// Command doccheck keeps the prose honest: it extracts every ```go
// fence from the repo's markdown documentation and COMPILES it against
// the current tree, and verifies that every intra-repo markdown link
// points at a file that exists. Docs that drift from the API fail CI
// instead of silently rotting.
//
// Fences that begin with "package " compile as standalone files;
// every other fence is wrapped in `package main` + `func main()` with
// imports derived from the identifiers the fence actually uses.
// Fences must therefore be compile-clean as function bodies: declared
// variables used, errors handled or printed. That discipline is the
// point — a snippet a reader pastes into a function should build.
//
// Usage: go run ./tools/doccheck [-root DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

// docFiles are the markdown files whose fences and links are checked.
var docFiles = []string{"README.md", "docs/ARCHITECTURE.md", "docs/EVENTS.md", "docs/CHAOS.md", "docs/NETWORK.md", "docs/FLEET.md"}

// importCandidates maps identifier prefixes to import specs. A fence
// that mentions `hft.` imports the module root, and so on.
var importCandidates = []struct {
	ident string
	spec  string
}{
	{"hft", `hft "repro"`},
	{"fmt", `"fmt"`},
	{"log", `"log"`},
	{"context", `"context"`},
	{"bytes", `"bytes"`},
	{"strings", `"strings"`},
	{"time", `"time"`},
	{"os", `"os"`},
	{"io", `"io"`},
	{"errors", `"errors"`},
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	// All work happens in run so the generated-tree cleanup defer runs
	// even on failure (os.Exit skips defers).
	os.Exit(run(*root))
}

func run(root string) int {
	fail := false
	report := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "doccheck: "+format+"\n", args...)
		fail = true
	}

	// The generated tree must NOT be dot-prefixed: the go tool silently
	// ignores dot directories, which would turn the build below into a
	// no-op that matches zero packages and "passes".
	genDir, err := os.MkdirTemp(root, "doccheck-gen-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	defer os.RemoveAll(genDir)

	fences := 0
	for _, rel := range docFiles {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			report("%v", err)
			continue
		}
		checkLinks(rel, filepath.Dir(path), string(data), report)
		for i, fence := range goFences(string(data)) {
			dir := filepath.Join(genDir, fmt.Sprintf("%s_f%d", sanitize(rel), i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				report("%v", err)
				continue
			}
			src := fence
			if !strings.HasPrefix(strings.TrimSpace(fence), "package ") {
				src = wrapFence(fence)
			}
			if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
				report("%v", err)
				continue
			}
			fences++
		}
	}

	if fences > 0 {
		pattern := "./" + filepath.Base(genDir) + "/..."
		// Guard against the silent-no-op failure mode: the pattern must
		// actually match the generated packages.
		list := exec.Command("go", "list", pattern)
		list.Dir = root
		if out, err := list.Output(); err != nil || len(strings.Fields(string(out))) == 0 {
			report("generated fence packages not visible to the go tool (pattern %s)", pattern)
		}
		cmd := exec.Command("go", "build", pattern)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			report("doc fences do not compile:\n%s", out)
		}
	}

	if fail {
		return 1
	}
	fmt.Printf("doccheck: %d go fences compiled, links OK across %d files\n", fences, len(docFiles))
	return 0
}

var fenceRe = regexp.MustCompile("(?s)```go\n(.*?)```")

// goFences extracts the bodies of ```go code fences.
func goFences(md string) []string {
	var out []string
	for _, m := range fenceRe.FindAllStringSubmatch(md, -1) {
		out = append(out, m[1])
	}
	return out
}

// wrapFence turns a snippet into a compilable main package, importing
// only the packages the snippet references.
func wrapFence(body string) string {
	var imports []string
	for _, c := range importCandidates {
		if regexp.MustCompile(`\b` + c.ident + `\.`).MatchString(body) {
			imports = append(imports, "\t"+c.spec)
		}
	}
	var b strings.Builder
	b.WriteString("package main\n\n")
	if len(imports) > 0 {
		b.WriteString("import (\n")
		b.WriteString(strings.Join(imports, "\n"))
		b.WriteString("\n)\n\n")
	}
	b.WriteString("func main() {\n")
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			b.WriteString("\n")
			continue
		}
		b.WriteString("\t" + line + "\n")
	}
	b.WriteString("}\n")
	return b.String()
}

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)]+)\)`)

// checkLinks verifies intra-repo link targets exist.
func checkLinks(rel, dir, md string, report func(string, ...any)) {
	for _, m := range linkRe.FindAllStringSubmatch(md, -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			report("%s: broken link %q", rel, m[1])
		}
	}
}

// sanitize makes a markdown path usable as a directory name.
func sanitize(rel string) string {
	return strings.NewReplacer("/", "_", ".", "_").Replace(rel)
}
